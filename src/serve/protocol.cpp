#include "src/serve/protocol.hpp"

#include <cmath>
#include <stdexcept>

#include "src/obs/jsonlite.hpp"

namespace hpcp::serve {

namespace {

using obs::JsonValue;

bool fail(ErrorInfo* err, std::string code, std::string message) {
  err->code = std::move(code);
  err->message = std::move(message);
  return false;
}

/// `id` may be a string or a number; anything else is a protocol error.
bool render_id(const JsonValue& v, std::string* out, ErrorInfo* err) {
  if (v.kind() == JsonValue::Kind::String) {
    *out = obs::json_quote(v.as_string());
    return true;
  }
  if (v.kind() == JsonValue::Kind::Number) {
    out->clear();
    obs::json_number_into(*out, v.as_number());
    return true;
  }
  return fail(err, "bad-request", "id must be a string or a number");
}

bool parse_params(const JsonValue& doc, Request* out, ErrorInfo* err) {
  if (!doc.contains("params")) {
    return fail(err, "bad-request", "request missing params");
  }
  const JsonValue& params = doc.at("params");
  if (params.kind() != JsonValue::Kind::Array) {
    return fail(err, "bad-request", "params must be an array of numbers");
  }
  if (params.as_array().empty()) {
    return fail(err, "bad-request", "params must not be empty");
  }
  out->params.reserve(params.as_array().size());
  for (const JsonValue& v : params.as_array()) {
    if (v.kind() != JsonValue::Kind::Number ||
        !std::isfinite(v.as_number())) {
      return fail(err, "bad-request", "params must be finite numbers");
    }
    out->params.push_back(v.as_number());
  }
  return true;
}

bool parse_scales(const JsonValue& doc, Request* out, ErrorInfo* err) {
  if (!doc.contains("scales")) return true;  // default: model targets
  const JsonValue& scales = doc.at("scales");
  if (scales.kind() != JsonValue::Kind::Array) {
    return fail(err, "bad-request", "scales must be an array of integers");
  }
  if (scales.as_array().empty()) {
    return fail(err, "bad-request", "empty scale list");
  }
  out->scales.reserve(scales.as_array().size());
  for (const JsonValue& v : scales.as_array()) {
    if (v.kind() != JsonValue::Kind::Number) {
      return fail(err, "bad-request", "scales must be integers");
    }
    const double s = v.as_number();
    if (!(s >= 1.0) || s != std::floor(s) || s > 1e12) {
      return fail(err, "bad-request",
                  "scales must be positive integers (got a non-integral, "
                  "non-positive, or oversized value)");
    }
    out->scales.push_back(static_cast<std::size_t>(s));
  }
  return true;
}

/// Shared by ingest's nprocs and run_id: a non-negative integral JSON
/// number that fits the target width.
bool parse_uint_field(const JsonValue& doc, const char* key, bool required,
                      std::uint64_t min, std::uint64_t* out,
                      ErrorInfo* err) {
  if (!doc.contains(key)) {
    if (!required) return true;
    return fail(err, "bad-request",
                std::string("ingest request missing ") + key);
  }
  const JsonValue& v = doc.at(key);
  if (v.kind() != JsonValue::Kind::Number) {
    return fail(err, "bad-request",
                std::string(key) + " must be an integer");
  }
  const double d = v.as_number();
  if (!(d >= static_cast<double>(min)) || d != std::floor(d) || d > 1e15) {
    return fail(err, "bad-request",
                std::string(key) +
                    " must be an integer >= " + std::to_string(min));
  }
  *out = static_cast<std::uint64_t>(d);
  return true;
}

/// The optional "model" field naming a tenant (predict / ingest / retrain).
bool parse_model_field(const JsonValue& doc, Request* out, ErrorInfo* err) {
  if (!doc.contains("model")) return true;
  if (doc.at("model").kind() != JsonValue::Kind::String) {
    return fail(err, "bad-request", "model must be a string tenant name");
  }
  out->tenant = doc.at("model").as_string();
  if (out->tenant.empty()) {
    return fail(err, "bad-request", "model must not be empty");
  }
  return true;
}

}  // namespace

bool parse_request(const std::string& line, Request* out, ErrorInfo* err) {
  *out = Request{};
  JsonValue doc;
  try {
    doc = obs::parse_json(line);
  } catch (const std::runtime_error& e) {
    return fail(err, "bad-request", std::string("malformed JSON: ") +
                                        e.what());
  }
  if (doc.kind() != JsonValue::Kind::Object) {
    return fail(err, "bad-request", "request must be a JSON object");
  }
  // Echo the id even on later failures: parse it before anything else.
  if (doc.contains("id") && !render_id(doc.at("id"), &out->id_json, err)) {
    return false;
  }

  std::string cmd = "predict";
  if (doc.contains("cmd")) {
    if (doc.at("cmd").kind() != JsonValue::Kind::String) {
      return fail(err, "bad-request", "cmd must be a string");
    }
    cmd = doc.at("cmd").as_string();
  }
  if (cmd == "predict") {
    out->cmd = Request::Cmd::kPredict;
    return parse_model_field(doc, out, err) && parse_params(doc, out, err) &&
           parse_scales(doc, out, err);
  }
  if (cmd == "ping") {
    out->cmd = Request::Cmd::kPing;
    return true;
  }
  if (cmd == "health") {
    out->cmd = Request::Cmd::kHealth;
    return true;
  }
  if (cmd == "reload") {
    out->cmd = Request::Cmd::kReload;
    if (doc.contains("model")) {
      if (doc.at("model").kind() != JsonValue::Kind::String) {
        return fail(err, "bad-request", "model must be a string path");
      }
      out->model_path = doc.at("model").as_string();
    }
    if (doc.contains("tenant")) {
      if (doc.at("tenant").kind() != JsonValue::Kind::String) {
        return fail(err, "bad-request", "tenant must be a string");
      }
      out->tenant = doc.at("tenant").as_string();
      if (out->tenant.empty()) {
        return fail(err, "bad-request", "tenant must not be empty");
      }
    }
    return true;
  }
  if (cmd == "stats") {
    out->cmd = Request::Cmd::kStats;
    return true;
  }
  if (cmd == "trace-dump") {
    out->cmd = Request::Cmd::kTraceDump;
    if (doc.contains("path")) {
      if (doc.at("path").kind() != JsonValue::Kind::String) {
        return fail(err, "bad-request", "path must be a string");
      }
      out->model_path = doc.at("path").as_string();
    }
    return true;
  }
  if (cmd == "ingest") {
    out->cmd = Request::Cmd::kIngest;
    if (!parse_model_field(doc, out, err) || !parse_params(doc, out, err)) {
      return false;
    }
    std::uint64_t nprocs = 0;
    if (!parse_uint_field(doc, "nprocs", /*required=*/true, 1, &nprocs,
                          err)) {
      return false;
    }
    out->nprocs = static_cast<std::size_t>(nprocs);
    if (!doc.contains("runtime")) {
      return fail(err, "bad-request", "ingest request missing runtime");
    }
    if (doc.at("runtime").kind() != JsonValue::Kind::Number ||
        !std::isfinite(doc.at("runtime").as_number())) {
      return fail(err, "bad-request", "runtime must be a finite number");
    }
    out->runtime = doc.at("runtime").as_number();
    std::uint64_t run_id = 0;
    if (!parse_uint_field(doc, "run_id", /*required=*/false, 0, &run_id,
                          err)) {
      return false;
    }
    out->run_id = run_id;
    return true;
  }
  if (cmd == "retrain") {
    out->cmd = Request::Cmd::kRetrain;
    return parse_model_field(doc, out, err);
  }
  if (cmd == "shutdown") {
    out->cmd = Request::Cmd::kShutdown;
    return true;
  }
  return fail(err, "unknown-cmd", "unknown cmd: " + cmd);
}

std::string render_predictions(const std::string& id_json,
                               std::uint64_t model_version,
                               const std::vector<std::size_t>& scales,
                               const std::vector<double>& predictions) {
  std::string out = "{";
  if (!id_json.empty()) {
    out += "\"id\":";
    out += id_json;
    out += ',';
  }
  out += "\"ok\":true,\"model_version\":";
  out += std::to_string(model_version);
  out += ",\"scales\":[";
  for (std::size_t i = 0; i < scales.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(scales[i]);
  }
  out += "],\"predictions\":[";
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (i > 0) out += ',';
    obs::json_number_into(out, predictions[i]);
  }
  out += "]}";
  return out;
}

std::string render_error(const std::string& id_json,
                         std::uint64_t model_version, const ErrorInfo& err) {
  std::string out = "{";
  if (!id_json.empty()) {
    out += "\"id\":";
    out += id_json;
    out += ',';
  }
  out += "\"ok\":false,\"model_version\":";
  out += std::to_string(model_version);
  out += ",\"error\":{\"code\":";
  out += obs::json_quote(err.code);
  out += ",\"message\":";
  out += obs::json_quote(err.message);
  if (err.retry_after_ms > 0) {
    out += ",\"retry_after_ms\":";
    out += std::to_string(err.retry_after_ms);
  }
  out += "}}";
  return out;
}

}  // namespace hpcp::serve
