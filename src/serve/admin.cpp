#include "src/serve/admin.hpp"

#include <string>

#include "src/obs/obs.hpp"
#include "src/serve/server.hpp"

namespace hpcp::serve {

namespace {

std::string http_response(int status, const char* reason,
                          std::string_view content_type,
                          std::string body) {
  std::string out = "HTTP/1.0 ";
  out += std::to_string(status);
  out += ' ';
  out += reason;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

constexpr std::string_view kJson = "application/json";
constexpr std::string_view kText = "text/plain; charset=utf-8";
/// The content type Prometheus scrapers negotiate for the text format.
constexpr std::string_view kPromText =
    "text/plain; version=0.0.4; charset=utf-8";

/// "GET /statsz HTTP/1.0" -> ("GET", "/statsz"). Query strings are
/// stripped: scrapers sometimes append cache busters.
bool parse_request_line(std::string_view head, std::string_view* method,
                        std::string_view* target) {
  const std::size_t eol = head.find_first_of("\r\n");
  std::string_view line =
      eol == std::string_view::npos ? head : head.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  *method = line.substr(0, sp1);
  *target = sp2 == std::string_view::npos
                ? line.substr(sp1 + 1)
                : line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = target->find('?');
  if (query != std::string_view::npos) *target = target->substr(0, query);
  return !target->empty();
}

}  // namespace

bool admin_request_complete(std::string_view inbuf) {
  return inbuf.find("\r\n\r\n") != std::string_view::npos ||
         inbuf.find("\n\n") != std::string_view::npos ||
         // A bare request line followed by one newline is accepted too:
         // "GET /metrics HTTP/1.0\n" from a hand-rolled probe is
         // unambiguous — everything this plane needs is on line one.
         inbuf.find('\n') != std::string_view::npos;
}

std::string handle_admin_request(Server& server, std::string_view inbuf,
                                 bool overflow) {
  obs::count("serve.admin_requests");
  if (overflow) {
    obs::count("serve.admin_errors");
    return http_response(431, "Request Header Fields Too Large", kText,
                         "request head too large\n");
  }
  std::string_view method;
  std::string_view target;
  if (!parse_request_line(inbuf, &method, &target)) {
    obs::count("serve.admin_errors");
    return http_response(400, "Bad Request", kText, "malformed request\n");
  }
  if (method != "GET") {
    obs::count("serve.admin_errors");
    return http_response(405, "Method Not Allowed", kText,
                         "only GET is served here\n");
  }
  if (target == "/metrics") {
    return http_response(200, "OK", kPromText,
                         obs::global_metrics().to_prometheus());
  }
  if (target == "/healthz") {
    std::string body = server.render_health_json();
    body += '\n';
    // Degraded still serves cache hits, so it stays 200 for a plain
    // liveness probe; only "no model at all" is a scrape-level failure.
    const bool unavailable =
        body.find("\"status\":\"unavailable\"") != std::string::npos;
    return http_response(unavailable ? 503 : 200,
                         unavailable ? "Service Unavailable" : "OK", kJson,
                         std::move(body));
  }
  if (target == "/statsz") {
    std::string body = server.render_stats_json();
    body += '\n';
    return http_response(200, "OK", kJson, std::move(body));
  }
  obs::count("serve.admin_errors");
  return http_response(404, "Not Found", kText, "not found\n");
}

}  // namespace hpcp::serve
