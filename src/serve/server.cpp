#include "src/serve/server.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "src/linear/matrix.hpp"
#include "src/obs/jsonlite.hpp"

namespace hpcp::serve {

namespace {

/// Requests whose line failed to parse or validate still occupy their slot
/// in the response order; this sentinel marks them as already rendered.
bool is_rendered(const std::string& response) { return !response.empty(); }

bool is_blank(const std::string& line) {
  return std::all_of(line.begin(), line.end(), [](unsigned char c) {
    return c == ' ' || c == '\t' || c == '\r';
  });
}

}  // namespace

std::atomic<bool>& reload_flag() noexcept {
  static std::atomic<bool> flag{false};
  return flag;
}

Server::Server(ServeOptions opts)
    : opts_(opts), cache_(opts.cache_entries, opts.cache_shards) {
  if (opts_.batch_max == 0) opts_.batch_max = 1;
  if (opts_.threads >= 1) {
    own_pool_ = std::make_unique<ThreadPool>(opts_.threads, "serve-worker");
    pool_ = own_pool_.get();
  }
}

std::shared_ptr<const Server::Snapshot> Server::snapshot() const {
  const std::lock_guard lock(snapshot_mutex_);
  return snapshot_;
}

void Server::install(Snapshot snap) {
  auto shared = std::make_shared<const Snapshot>(std::move(snap));
  {
    const std::lock_guard lock(snapshot_mutex_);
    snapshot_ = std::move(shared);
  }
  // Cached values belong to the previous model; a stale hit would break
  // the "response = f(request, model_version)" contract.
  cache_.clear();
}

Expected<void> Server::load_model_file(const std::string& path) {
  const obs::Span span("serve.reload", path);
  auto loaded = TwoLevelModel::load_file_checked(path);
  if (!loaded) {
    obs::count("serve.reload_failures");
    return loaded.error();
  }
  Snapshot snap;
  snap.model = std::move(*loaded);
  snap.version = model_version() + 1;
  snap.source_path = path;
  snap.default_scales = snap.model.extrapolation().target_scales();
  snap.num_features = snap.model.interpolation().num_features();
  install(std::move(snap));
  obs::count("serve.reloads");
  return {};
}

void Server::set_model(TwoLevelModel model, std::string source_path) {
  Snapshot snap;
  snap.version = model_version() + 1;
  snap.source_path = std::move(source_path);
  snap.default_scales = model.extrapolation().target_scales();
  snap.num_features = model.interpolation().num_features();
  snap.model = std::move(model);
  install(std::move(snap));
}

std::uint64_t Server::model_version() const {
  const auto snap = snapshot();
  return snap ? snap->version : 0;
}

std::optional<Request> Server::enqueue(const std::string& line,
                                       std::vector<Pending>* batch) {
  Pending pending;  // Stopwatch starts here, when the line arrives
  ErrorInfo err;
  if (!parse_request(line, &pending.req, &err)) {
    pending.response =
        render_error(pending.req.id_json, model_version(), err);
    batch->push_back(std::move(pending));
    return std::nullopt;
  }
  if (pending.req.cmd != Request::Cmd::kPredict) {
    return std::move(pending.req);
  }
  batch->push_back(std::move(pending));
  return std::nullopt;
}

void Server::flush(std::vector<Pending>* batch, std::ostream& out) {
  if (batch->empty()) return;
  const obs::Span span("serve.batch");
  obs::count("serve.batches");
  obs::gauge_set("serve.batch_size", static_cast<double>(batch->size()));

  const auto snap = snapshot();
  const std::uint64_t version = snap ? snap->version : 0;

  // Resolve every request to either a rendered error, a full cache hit,
  // or a row of the batched compute. All serially, in request order, so
  // cache hit/miss accounting and LRU movement are deterministic.
  struct Slot {
    std::vector<std::size_t> scales;
    std::vector<double> predictions;
    bool compute = false;
  };
  std::vector<Slot> slots(batch->size());
  std::vector<std::size_t> compute_rows;
  for (std::size_t i = 0; i < batch->size(); ++i) {
    Pending& p = (*batch)[i];
    if (is_rendered(p.response)) continue;
    if (!snap) {
      p.response = render_error(
          p.req.id_json, version,
          {"unavailable", "no model loaded"});
      continue;
    }
    if (p.req.params.size() != snap->num_features) {
      p.response = render_error(
          p.req.id_json, version,
          {"bad-request",
           "params width mismatch: got " +
               std::to_string(p.req.params.size()) + ", model expects " +
               std::to_string(snap->num_features)});
      continue;
    }
    Slot& slot = slots[i];
    slot.scales =
        p.req.scales.empty() ? snap->default_scales : p.req.scales;
    slot.predictions.resize(slot.scales.size());
    bool all_hit = cache_.enabled();
    for (std::size_t s = 0; all_hit && s < slot.scales.size(); ++s) {
      const auto hit = cache_.lookup(p.req.params, slot.scales[s]);
      if (hit.has_value()) {
        slot.predictions[s] = *hit;
      } else {
        all_hit = false;
      }
    }
    if (all_hit) {
      obs::count("serve.cache_hit");
    } else {
      obs::count("serve.cache_miss");
      slot.compute = true;
      compute_rows.push_back(i);
    }
  }

  if (!compute_rows.empty()) {
    const obs::Span compute_span("serve.batch_compute");
    Matrix configs(compute_rows.size(), snap->num_features);
    for (std::size_t r = 0; r < compute_rows.size(); ++r) {
      configs.set_row(r, (*batch)[compute_rows[r]].req.params);
    }
    // Level 1 batched over all miss rows at once; level 2 fans the
    // per-row evaluation out over the pool. parallel_map writes results
    // into index-ordered slots, so worker count never reorders anything.
    const Matrix curves = snap->model.interpolation().predict_curves(configs);
    auto results = parallel_map(
        compute_rows.size(),
        [&](std::size_t r) {
          const Slot& slot = slots[compute_rows[r]];
          return snap->model.predict_curve_at_scales(curves.row(r),
                                                     slot.scales);
        },
        pool_);
    // Cache inserts happen serially in request order — eviction order is
    // part of the determinism contract.
    for (std::size_t r = 0; r < compute_rows.size(); ++r) {
      Slot& slot = slots[compute_rows[r]];
      slot.predictions = std::move(results[r]);
      const Pending& p = (*batch)[compute_rows[r]];
      for (std::size_t s = 0; s < slot.scales.size(); ++s) {
        cache_.insert(p.req.params, slot.scales[s], slot.predictions[s]);
      }
    }
  }

  for (std::size_t i = 0; i < batch->size(); ++i) {
    Pending& p = (*batch)[i];
    const obs::Span request_span("serve.request");
    if (!is_rendered(p.response)) {
      p.response = render_predictions(p.req.id_json, version,
                                      slots[i].scales,
                                      slots[i].predictions);
      ++requests_served_;
    }
    out << p.response << '\n';
    obs::count("serve.requests");
    obs::observe("serve.latency_seconds", p.watch.seconds(),
                 obs::default_time_bounds());
  }
  out.flush();
  batch->clear();
}

std::string Server::handle_control(const Request& req) {
  const std::uint64_t version = model_version();
  const auto prefix = [&req](const char* cmd) {
    std::string out = "{";
    if (!req.id_json.empty()) {
      out += "\"id\":";
      out += req.id_json;
      out += ',';
    }
    out += "\"ok\":true,\"cmd\":\"";
    out += cmd;
    out += "\"";
    return out;
  };
  switch (req.cmd) {
    case Request::Cmd::kPing: {
      std::string out = prefix("ping");
      out += ",\"schema\":\"";
      out += kProtocolSchema;
      out += "\",\"model_version\":";
      out += std::to_string(version);
      out += '}';
      return out;
    }
    case Request::Cmd::kReload: {
      const obs::Span span("serve.cmd_reload");
      std::string path = req.model_path;
      if (path.empty()) {
        const auto snap = snapshot();
        if (snap) path = snap->source_path;
      }
      if (path.empty()) {
        return render_error(req.id_json, version,
                            {"bad-request", "no model path to reload"});
      }
      const auto result = load_model_file(path);
      if (!result) {
        // The old snapshot is untouched: requests keep being answered by
        // the model that was live before the failed reload.
        return render_error(req.id_json, version,
                            {error_code_name(result.error().code),
                             result.error().to_string()});
      }
      std::string out = prefix("reload");
      out += ",\"model_version\":";
      out += std::to_string(model_version());
      out += ",\"model\":";
      out += obs::json_quote(path);
      out += '}';
      return out;
    }
    case Request::Cmd::kStats: {
      std::string out = prefix("stats");
      out += ",\"schema\":\"";
      out += kProtocolSchema;
      out += "\",\"model_version\":";
      out += std::to_string(version);
      out += ",\"requests\":";
      out += std::to_string(requests_served_);
      out += ",\"cache_hits\":";
      out += std::to_string(cache_.hits());
      out += ",\"cache_misses\":";
      out += std::to_string(cache_.misses());
      out += ",\"cache_entries\":";
      out += std::to_string(cache_.size());
      out += ",\"cache_capacity\":";
      out += std::to_string(cache_.max_entries());
      out += '}';
      return out;
    }
    case Request::Cmd::kShutdown: {
      std::string out = prefix("shutdown");
      out += '}';
      return out;
    }
    case Request::Cmd::kPredict:
      break;  // never routed here
  }
  return render_error(req.id_json, version,
                      {"bad-request", "unroutable command"});
}

bool Server::run(std::istream& in, std::ostream& out) {
  const obs::Span span("serve.session");
  std::vector<Pending> batch;
  std::string line;
  for (;;) {
    if (reload_flag().exchange(false)) {
      const auto snap = snapshot();
      if (snap && !snap->source_path.empty()) {
        // SIGHUP reload is out-of-band: it produces no response line, so
        // replayed request streams stay aligned with their responses.
        (void)load_model_file(snap->source_path);
      }
    }
    if (!std::getline(in, line)) break;
    if (is_blank(line)) continue;
    auto control = enqueue(line, &batch);
    if (control.has_value()) {
      flush(&batch, out);
      out << handle_control(*control) << '\n';
      out.flush();
      if (control->cmd == Request::Cmd::kShutdown) return true;
      continue;
    }
    // Flush when the batch is full, or as soon as the input would block —
    // an interactive client gets its answer now, a replayed burst batches.
    if (batch.size() >= opts_.batch_max || in.rdbuf()->in_avail() <= 0) {
      flush(&batch, out);
    }
  }
  flush(&batch, out);
  return false;
}

std::string Server::handle_line(const std::string& line) {
  if (is_blank(line)) return "";
  std::vector<Pending> batch;
  auto control = enqueue(line, &batch);
  if (control.has_value()) return handle_control(*control);
  std::ostringstream rendered;
  flush(&batch, rendered);
  std::string response = rendered.str();
  if (!response.empty() && response.back() == '\n') response.pop_back();
  return response;
}

}  // namespace hpcp::serve
