#include "src/serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "src/linear/matrix.hpp"
#include "src/obs/jsonlite.hpp"

namespace hpcp::serve {

namespace {

/// Requests whose line failed to parse or validate still occupy their slot
/// in the response order; this sentinel marks them as already rendered.
bool is_rendered(const std::string& response) { return !response.empty(); }

bool is_blank(const std::string& line) {
  return std::all_of(line.begin(), line.end(), [](unsigned char c) {
    return c == ' ' || c == '\t' || c == '\r';
  });
}

/// Lifecycle stamps are raw steady-clock microseconds on purpose: routing
/// them through the injectable millisecond clock would make every stamp a
/// tick of the chaos harness's skipping clock and perturb deadline
/// scenarios. The slow log is a wall-time diagnostic, exempt from the
/// byte-determinism contract.
std::uint64_t steady_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Outcome of one bounded line read.
enum class LineRead {
  kLine,    ///< a complete line (or final unterminated line) was read
  kEof,     ///< end of stream, nothing read
  kTooLong  ///< the line exceeded the bound; its remainder was discarded
};

/// getline with a hard byte bound: a line longer than `max` is *discarded*
/// (consumed up to its newline so the stream stays line-aligned) instead
/// of being buffered without limit — one hostile client must not be able
/// to balloon the daemon's memory.
LineRead read_line_bounded(std::istream& in, std::string* line,
                           std::size_t max) {
  line->clear();
  std::streambuf* buf = in.rdbuf();
  constexpr int kEofCh = std::char_traits<char>::eof();
  for (;;) {
    const int c = buf->sbumpc();
    if (c == kEofCh) {
      in.setstate(std::ios::eofbit);
      return line->empty() ? LineRead::kEof : LineRead::kLine;
    }
    if (c == '\n') return LineRead::kLine;
    if (line->size() >= max) {
      int d = c;
      while (d != kEofCh && d != '\n') d = buf->sbumpc();
      if (d == kEofCh) in.setstate(std::ios::eofbit);
      return LineRead::kTooLong;
    }
    line->push_back(static_cast<char>(c));
  }
}

}  // namespace

std::atomic<bool>& reload_flag() noexcept {
  static std::atomic<bool> flag{false};
  return flag;
}

Server::Server(ServeOptions opts)
    : opts_(std::move(opts)), cache_(opts_.cache_entries, opts_.cache_shards) {
  if (opts_.batch_max == 0) opts_.batch_max = 1;
  if (opts_.max_pending == 0) opts_.max_pending = 1;
  if (opts_.max_line_bytes == 0) opts_.max_line_bytes = 1;
  if (opts_.threads >= 1) {
    own_pool_ = std::make_unique<ThreadPool>(opts_.threads, "serve-worker");
    pool_ = own_pool_.get();
  }
  start_ms_ = now_ms();  // uptime_ms anchor, on the injectable clock
  slow_log_.reserve(kSlowLogEntries);
}

std::uint64_t Server::now_ms() const {
  if (opts_.clock_ms) return opts_.clock_ms();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool Server::degraded() const noexcept {
  return degraded_saturated_ ||
         (opts_.degraded_reload_streak > 0 &&
          reload_failure_streak_ >= opts_.degraded_reload_streak);
}

std::shared_ptr<const Server::Snapshot> Server::snapshot() const {
  const std::lock_guard lock(snapshot_mutex_);
  return snapshot_;
}

void Server::install(Snapshot snap) {
  auto shared = std::make_shared<const Snapshot>(std::move(snap));
  {
    const std::lock_guard lock(snapshot_mutex_);
    snapshot_ = std::move(shared);
  }
  // Cached values belong to the previous model; a stale hit would break
  // the "response = f(request, model_version)" contract.
  cache_.clear();
}

Expected<void> Server::attach_registry(const std::string& root) {
  auto reg = registry::Registry::open(root);
  if (!reg) return reg.error();
  registry::PoolOptions popts;
  popts.max_resident_models = opts_.max_resident_models;
  popts.max_resident_bytes = opts_.max_resident_bytes;
  model_pool_ =
      std::make_unique<registry::ModelPool>(std::move(*reg), popts);
  ingest::SchedulerOptions iopts;
  iopts.retrain_records = opts_.retrain_records;
  iopts.retrain_interval_ms = opts_.retrain_interval_ms;
  ingest_ = std::make_unique<ingest::IngestScheduler>(*model_pool_, iopts);
  obs::gauge_set("serve.registry_mode", 1.0);
  return {};
}

Expected<void> Server::load_model_file(const std::string& path) {
  const obs::Span span("serve.reload", path);
  auto loaded = TwoLevelModel::load_file_checked(path);
  if (!loaded) {
    obs::count("serve.reload_failures");
    return loaded.error();
  }
  Snapshot snap;
  snap.model = std::move(*loaded);
  snap.version = model_version() + 1;
  snap.source_path = path;
  snap.default_scales = snap.model.extrapolation().target_scales();
  snap.num_features = snap.model.interpolation().num_features();
  install(std::move(snap));
  obs::count("serve.reloads");
  return {};
}

Expected<void> Server::try_reload(const std::string& path) {
  auto result = load_model_file(path);
  if (result) {
    reload_failure_streak_ = 0;
    reload_backoff_ms_ = 0;
    reload_retry_pending_ = false;
    obs::gauge_set("serve.reload_backoff_ms", 0.0);
  } else {
    ++reload_failure_streak_;
    // Capped exponential backoff: a torn archive or unavailable path is
    // retried at 1s, 2s, 4s, ... up to the cap, instead of being dropped
    // on the floor after one attempt. The old model serves throughout.
    reload_backoff_ms_ =
        reload_backoff_ms_ == 0
            ? opts_.reload_backoff_initial_ms
            : std::min(opts_.reload_backoff_max_ms, reload_backoff_ms_ * 2);
    reload_retry_at_ms_ = now_ms() + reload_backoff_ms_;
    reload_retry_path_ = path;
    reload_retry_pending_ = opts_.reload_backoff_initial_ms > 0;
    obs::gauge_set("serve.reload_backoff_ms",
                   static_cast<double>(reload_backoff_ms_));
  }
  obs::gauge_set("serve.degraded", degraded() ? 1.0 : 0.0);
  return result;
}

void Server::poll_reloads() {
  // The ingest pump rides the same between-batches hook as reloads: it
  // completes finished background retrains (judge / publish / epoch-swap)
  // and fires due triggers. Out-of-band like SIGHUP — no response lines,
  // so replayed request streams stay aligned with their responses.
  if (ingest_ != nullptr) {
    for (const std::string& tenant : ingest_->pump(now_ms())) {
      (void)tenant;
      obs::count("serve.ingest_promotions");
    }
  }
  if (reload_flag().exchange(false)) {
    if (model_pool_) {
      // Registry-mode SIGHUP: pick up externally published tenants and
      // versions, then epoch-swap every resident tenant. Per-tenant
      // failures degrade only their tenant.
      (void)model_pool_->refresh();
      model_pool_->reload_all_resident();
      return;
    }
    const auto snap = snapshot();
    if (snap && !snap->source_path.empty()) {
      // SIGHUP reload is out-of-band: it produces no response line, so
      // replayed request streams stay aligned with their responses.
      (void)try_reload(snap->source_path);
    }
    return;
  }
  if (reload_retry_pending_ && now_ms() >= reload_retry_at_ms_) {
    obs::count("serve.reload_retries");
    (void)try_reload(reload_retry_path_);
  }
}

void Server::set_model(TwoLevelModel model, std::string source_path) {
  Snapshot snap;
  snap.version = model_version() + 1;
  snap.source_path = std::move(source_path);
  snap.default_scales = model.extrapolation().target_scales();
  snap.num_features = model.interpolation().num_features();
  snap.model = std::move(model);
  install(std::move(snap));
}

std::uint64_t Server::model_version() const {
  const auto snap = snapshot();
  return snap ? snap->version : 0;
}

std::optional<Request> Server::enqueue(const std::string& line,
                                       std::vector<Pending>* batch) {
  Pending pending;  // Stopwatch starts here, when the line arrives
  ErrorInfo err;
  if (!parse_request(line, &pending.req, &err)) {
    pending.trace.code = err.code;
    pending.response =
        render_error(pending.req.id_json, model_version(), err);
    batch->push_back(std::move(pending));
    return std::nullopt;
  }
  if (pending.req.cmd != Request::Cmd::kPredict) {
    return std::move(pending.req);
  }
  // Admission control: more admitted-but-unanswered requests than
  // max_pending means the client is pipelining faster than we drain;
  // shed the overflow *now* with a typed hint instead of queueing
  // without bound. Shed responses still occupy their slot in the
  // response order.
  const std::size_t admitted = static_cast<std::size_t>(
      std::count_if(batch->begin(), batch->end(),
                    [](const Pending& p) { return p.admitted; }));
  if (admitted >= opts_.max_pending) {
    ++sheds_;
    ++shed_streak_;
    obs::count("serve.shed");
    if (opts_.degraded_shed_streak > 0 && !degraded_saturated_ &&
        shed_streak_ >= opts_.degraded_shed_streak) {
      degraded_saturated_ = true;
      obs::count("serve.degraded_entries");
      obs::gauge_set("serve.degraded", 1.0);
    }
    roll_sheds_.add(now_ms());
    pending.trace.code = kErrOverloaded;
    pending.response = render_error(
        pending.req.id_json, model_version(),
        {kErrOverloaded,
         "request queue full (max_pending=" +
             std::to_string(opts_.max_pending) + "), request shed",
         opts_.retry_after_ms});
  } else {
    shed_streak_ = 0;
    if (degraded_saturated_) {
      degraded_saturated_ = false;
      obs::gauge_set("serve.degraded", degraded() ? 1.0 : 0.0);
    }
    pending.admitted = true;
    pending.trace.id = ++next_request_id_;
    pending.trace.admit_us = steady_us();
    if (opts_.request_deadline_ms > 0) pending.arrival_ms = now_ms();
  }
  batch->push_back(std::move(pending));
  return std::nullopt;
}

void Server::resolve(std::vector<Pending>* batch) {
  if (batch->empty()) return;
  const obs::Span span("serve.batch");
  obs::count("serve.batches");
  obs::gauge_set("serve.batch_size", static_cast<double>(batch->size()));
  last_batch_lines_ = batch->size();
  last_queue_depth_ = static_cast<std::size_t>(
      std::count_if(batch->begin(), batch->end(),
                    [](const Pending& p) { return p.admitted; }));

  const auto snap = snapshot();
  const std::uint64_t version = snap ? snap->version : 0;
  const bool cache_only = degraded();
  const std::uint64_t flush_now =
      opts_.request_deadline_ms > 0 ? now_ms() : 0;
  // One injectable-clock read per flush feeds every rolling-window update
  // in this batch: O(1) extra clock traffic, not O(requests).
  const std::uint64_t roll_now = flush_now != 0 ? flush_now : now_ms();
  const std::uint64_t dequeue_us = steady_us();

  // Resolve every request to either a rendered error, a full cache hit,
  // or a row of the batched compute. All serially, in request order, so
  // cache hit/miss accounting, LRU movement, and (in registry mode)
  // residency loads/evictions are deterministic.
  struct Slot {
    std::vector<std::size_t> scales;
    std::vector<double> predictions;
    bool compute = false;
    const TwoLevelModel* model = nullptr;
    std::uint64_t version = 0;   ///< per-row model version (cache key)
    std::string tenant;          ///< cache key; "" = single-model mode
    /// Registry mode: the residency pin — holds the resident model alive
    /// for the whole flush even if the pool evicts it mid-window.
    std::shared_ptr<const registry::ResidentModel> pin;
  };
  std::vector<Slot> slots(batch->size());
  std::vector<std::size_t> compute_rows;
  for (std::size_t i = 0; i < batch->size(); ++i) {
    Pending& p = (*batch)[i];
    if (p.trace.id != 0) p.trace.dequeue_us = dequeue_us;
    if (is_rendered(p.response)) continue;
    if (opts_.request_deadline_ms > 0 &&
        flush_now >= p.arrival_ms + opts_.request_deadline_ms) {
      // The answer would arrive after the client stopped caring; say so
      // explicitly instead of spending compute on it.
      ++deadline_expired_;
      obs::count("serve.deadline_expired");
      p.trace.code = kErrDeadline;
      p.response = render_error(
          p.req.id_json, version,
          {kErrDeadline,
           "request deadline (" +
               std::to_string(opts_.request_deadline_ms) +
               "ms) expired before the response was produced"});
      continue;
    }
    Slot& slot = slots[i];
    if (model_pool_) {
      // Registry mode: resolve the request's tenant ("model" field,
      // absent = default) to a resident model, loading on a residency
      // miss. A failed load is a typed error for this request only —
      // every other tenant in the window is structurally unaffected.
      slot.tenant = p.req.tenant.empty() ? registry::kDefaultTenant
                                         : p.req.tenant;
      if (!model_pool_->known(slot.tenant)) {
        p.trace.code = kErrUnknownModel;
        p.response = render_error(
            p.req.id_json, 0,
            {kErrUnknownModel,
             "unknown model \"" + slot.tenant + "\": no such tenant in "
             "the registry"});
        continue;
      }
      auto acquired = model_pool_->acquire(slot.tenant);
      if (!acquired) {
        const std::string code = error_code_name(acquired.error().code);
        p.trace.code = code;
        p.response = render_error(p.req.id_json, 0,
                                  {code, acquired.error().to_string()});
        continue;
      }
      slot.pin = std::move(*acquired);
      slot.model = &slot.pin->model;
      slot.version = slot.pin->version;
    } else {
      if (!p.req.tenant.empty()) {
        // Named-model requests need a registry behind the server; a
        // single-model server knows no tenant names at all.
        p.trace.code = kErrUnknownModel;
        p.response = render_error(
            p.req.id_json, version,
            {kErrUnknownModel,
             "unknown model \"" + p.req.tenant +
                 "\": server is not running against a registry"});
        continue;
      }
      if (!snap) {
        p.trace.code = "unavailable";
        p.response = render_error(
            p.req.id_json, version,
            {"unavailable", "no model loaded"});
        continue;
      }
      slot.model = &snap->model;
      slot.version = version;
    }
    const std::size_t num_features = model_pool_
                                         ? slot.pin->num_features
                                         : snap->num_features;
    if (p.req.params.size() != num_features) {
      p.trace.code = "bad-request";
      p.response = render_error(
          p.req.id_json, slot.version,
          {"bad-request",
           "params width mismatch: got " +
               std::to_string(p.req.params.size()) + ", model expects " +
               std::to_string(num_features)});
      continue;
    }
    slot.scales = p.req.scales.empty()
                      ? (model_pool_ ? slot.pin->default_scales
                                     : snap->default_scales)
                      : p.req.scales;
    slot.predictions.resize(slot.scales.size());
    bool all_hit = cache_.enabled();
    for (std::size_t s = 0; all_hit && s < slot.scales.size(); ++s) {
      const auto hit = cache_.lookup(slot.tenant, slot.version,
                                     p.req.params, slot.scales[s]);
      if (hit.has_value()) {
        slot.predictions[s] = *hit;
      } else {
        all_hit = false;
      }
    }
    if (all_hit) {
      obs::count("serve.cache_hit");
      roll_cache_hits_.add(roll_now);
      p.trace.cache_hit = true;
    } else if (cache_only) {
      // Degraded cache-only mode: hits above were served from the live
      // cache; a miss would need the compute path we are protecting, so
      // it gets a typed rejection with a retry hint.
      ++degraded_rejects_;
      obs::count("serve.degraded_rejects");
      p.trace.code = kErrDegraded;
      p.response = render_error(
          p.req.id_json, slot.version,
          {kErrDegraded,
           "server is in degraded cache-only mode; prediction not cached",
           opts_.retry_after_ms});
    } else {
      obs::count("serve.cache_miss");
      roll_cache_misses_.add(roll_now);
      slot.compute = true;
      compute_rows.push_back(i);
    }
  }

  const std::uint64_t batch_start_us = steady_us();
  if (!compute_rows.empty()) {
    const obs::Span compute_span("serve.batch_compute");
    // Group miss rows by resolved model, first-appearance order: one
    // batched level-1 call per distinct model in the window. A
    // single-model window (every non-registry server) is exactly one
    // group, i.e. the classic path, byte for byte.
    std::vector<const TwoLevelModel*> group_models;
    std::vector<std::vector<std::size_t>> groups;
    for (const std::size_t row : compute_rows) {
      const TwoLevelModel* m = slots[row].model;
      std::size_t g = 0;
      while (g < group_models.size() && group_models[g] != m) ++g;
      if (g == group_models.size()) {
        group_models.push_back(m);
        groups.emplace_back();
      }
      groups[g].push_back(row);
    }
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const std::vector<std::size_t>& rows = groups[g];
      const TwoLevelModel& model = *group_models[g];
      Matrix configs(rows.size(), model.interpolation().num_features());
      for (std::size_t r = 0; r < rows.size(); ++r) {
        configs.set_row(r, (*batch)[rows[r]].req.params);
      }
      // Level 1 batched over the group's miss rows at once; level 2 fans
      // the per-row evaluation out over the pool. parallel_map writes
      // results into index-ordered slots, so worker count never reorders
      // anything.
      const Matrix curves = model.interpolation().predict_curves(configs);
      auto results = parallel_map(
          rows.size(),
          [&](std::size_t r) {
            const Slot& slot = slots[rows[r]];
            return model.predict_curve_at_scales(curves.row(r),
                                                 slot.scales);
          },
          pool_);
      for (std::size_t r = 0; r < rows.size(); ++r) {
        slots[rows[r]].predictions = std::move(results[r]);
      }
    }
    // Cache inserts happen serially in request order (across groups, not
    // group order) — eviction order is part of the determinism contract.
    for (const std::size_t row : compute_rows) {
      const Slot& slot = slots[row];
      const Pending& p = (*batch)[row];
      for (std::size_t s = 0; s < slot.scales.size(); ++s) {
        cache_.insert(slot.tenant, slot.version, p.req.params,
                      slot.scales[s], slot.predictions[s]);
      }
    }
  }

  const std::uint64_t predict_done_us = steady_us();
  for (std::size_t i = 0; i < batch->size(); ++i) {
    Pending& p = (*batch)[i];
    const obs::Span request_span("serve.request");
    if (!is_rendered(p.response)) {
      p.response = render_predictions(p.req.id_json, slots[i].version,
                                      slots[i].scales,
                                      slots[i].predictions);
      ++requests_served_;
    }
    note_response(p.trace.code.empty() ? "ok" : p.trace.code);
    roll_requests_.add(roll_now);
    roll_latency_.observe(roll_now, p.watch.seconds());
    if (p.trace.id != 0) {
      p.trace.batch_start_us = batch_start_us;
      p.trace.predict_done_us = predict_done_us;
      p.trace.render_us = steady_us();
      slow_log_insert(p.trace);
    }
    obs::count("serve.requests");
    obs::observe("serve.latency_seconds", p.watch.seconds(),
                 obs::default_time_bounds());
  }
}

void Server::flush(std::vector<Pending>* batch, std::ostream& out) {
  if (batch->empty()) return;
  resolve(batch);
  for (const Pending& p : *batch) out << p.response << '\n';
  out.flush();
  // The stream loop's transport is the ostream: a successful flush is the
  // closest analogue of "bytes left the process".
  for (const Pending& p : *batch) {
    if (p.trace.id != 0) note_write_drained(p.trace.id);
  }
  batch->clear();
}

Server::BatchOutcome Server::handle_batch(std::span<const BatchLine> lines) {
  poll_reloads();
  BatchOutcome result;
  result.responses.resize(lines.size());
  result.request_ids.resize(lines.size(), 0);
  std::vector<Pending> batch;
  std::vector<std::size_t> origin;  // window slot per batch entry
  const auto flush_into = [&] {
    if (batch.empty()) return;
    resolve(&batch);
    for (std::size_t j = 0; j < batch.size(); ++j) {
      result.responses[origin[j]] = std::move(batch[j].response);
      result.request_ids[origin[j]] = batch[j].trace.id;
    }
    batch.clear();
    origin.clear();
  };
  std::size_t i = 0;
  for (; i < lines.size(); ++i) {
    const BatchLine& line = lines[i];
    if (line.too_long) {
      ++too_large_;
      obs::count("serve.too_large");
      Pending pending;
      pending.trace.code = kErrTooLarge;
      pending.response = render_error(
          "", model_version(),
          {kErrTooLarge,
           "request line exceeds max_line_bytes=" +
               std::to_string(opts_.max_line_bytes) + "; line discarded"});
      origin.push_back(i);
      batch.push_back(std::move(pending));
    } else if (is_blank(line.text)) {
      // no response; the slot stays empty
    } else {
      auto control = enqueue(line.text, &batch);
      if (control.has_value()) {
        // A control command observes everything admitted before it, just
        // like the stream loop: flush first, then answer.
        flush_into();
        result.responses[i] = handle_control(*control);
        if (control->cmd == Request::Cmd::kShutdown) {
          result.shutdown = true;
          ++i;
          break;
        }
        continue;
      }
      origin.push_back(i);
    }
    if (batch.size() >= opts_.batch_max) flush_into();
  }
  flush_into();
  result.consumed = i;
  result.responses.resize(result.consumed);
  result.request_ids.resize(result.consumed);
  return result;
}

std::string Server::handle_control(const Request& req) {
  const std::uint64_t version = model_version();
  const auto prefix = [&req](const char* cmd) {
    std::string out = "{";
    if (!req.id_json.empty()) {
      out += "\"id\":";
      out += req.id_json;
      out += ',';
    }
    out += "\"ok\":true,\"cmd\":\"";
    out += cmd;
    out += "\"";
    return out;
  };
  switch (req.cmd) {
    case Request::Cmd::kPing: {
      note_response("ok");
      std::string out = prefix("ping");
      out += ",\"schema\":\"";
      out += kProtocolSchema;
      out += "\",\"model_version\":";
      out += std::to_string(version);
      out += '}';
      return out;
    }
    case Request::Cmd::kHealth: {
      note_response("ok");
      return health_json(req.id_json);
    }
    case Request::Cmd::kReload: {
      const obs::Span span("serve.cmd_reload");
      if (model_pool_) {
        if (!req.model_path.empty()) {
          note_response("bad-request");
          return render_error(
              req.id_json, version,
              {"bad-request",
               "reload by path is not available in registry mode; use "
               "{\"cmd\":\"reload\",\"tenant\":...}"});
        }
        if (!req.tenant.empty()) {
          // One tenant's epoch swap; failure degrades only that tenant
          // (the old resident epoch, if any, keeps serving).
          auto result = model_pool_->reload(req.tenant);
          if (!result) {
            const std::string code =
                model_pool_->known(req.tenant)
                    ? std::string(error_code_name(result.error().code))
                    : std::string(kErrUnknownModel);
            note_response(code);
            return render_error(req.id_json, version,
                                {code, result.error().to_string()});
          }
          note_response("ok");
          std::string out = prefix("reload");
          out += ",\"tenant\":";
          out += obs::json_quote(req.tenant);
          out += ",\"model_version\":";
          out += std::to_string(*result);
          out += '}';
          return out;
        }
        // Tenant-less reload: pick up externally published archives, then
        // epoch-swap every resident tenant.
        (void)model_pool_->refresh();
        model_pool_->reload_all_resident();
        note_response("ok");
        std::string out = prefix("reload");
        out += ",\"registry\":true,\"resident\":";
        out += std::to_string(model_pool_->resident_count());
        out += '}';
        return out;
      }
      if (!req.tenant.empty()) {
        note_response(kErrUnknownModel);
        return render_error(
            req.id_json, version,
            {kErrUnknownModel,
             "tenant reload requires registry mode (serve --registry)"});
      }
      std::string path = req.model_path;
      if (path.empty()) {
        const auto snap = snapshot();
        if (snap) path = snap->source_path;
      }
      if (path.empty()) {
        note_response("bad-request");
        return render_error(req.id_json, version,
                            {"bad-request", "no model path to reload"});
      }
      const auto result = try_reload(path);
      if (!result) {
        // The old snapshot is untouched: requests keep being answered by
        // the model that was live before the failed reload, and
        // poll_reloads retries on the backoff schedule.
        note_response(error_code_name(result.error().code));
        return render_error(req.id_json, version,
                            {error_code_name(result.error().code),
                             result.error().to_string()});
      }
      note_response("ok");
      std::string out = prefix("reload");
      out += ",\"model_version\":";
      out += std::to_string(model_version());
      out += ",\"model\":";
      out += obs::json_quote(path);
      out += '}';
      return out;
    }
    case Request::Cmd::kStats: {
      // The same hpcp-stats/1 snapshot the admin plane's GET /statsz
      // serves, wrapped in a protocol envelope so in-protocol probes need
      // no second port.
      note_response("ok");
      std::string out = prefix("stats");
      out += ",\"schema\":\"";
      out += kProtocolSchema;
      out += "\",\"stats\":";
      out += render_stats_json();
      out += '}';
      return out;
    }
    case Request::Cmd::kTraceDump: {
      if (req.model_path.empty()) {
        note_response("bad-request");
        return render_error(
            req.id_json, version,
            {"bad-request", "trace-dump requires a \"path\" to write to"});
      }
      const auto events = obs::Tracer::instance().snapshot();
      if (!obs::Tracer::instance().write_chrome_json(req.model_path)) {
        note_response("io");
        return render_error(
            req.id_json, version,
            {"io", "cannot write trace to " + req.model_path});
      }
      note_response("ok");
      std::string out = prefix("trace-dump");
      out += ",\"schema\":\"";
      out += kProtocolSchema;
      out += "\",\"path\":";
      out += obs::json_quote(req.model_path);
      out += ",\"events\":";
      out += std::to_string(events.size());
      out += ",\"dropped\":";
      out += std::to_string(obs::Tracer::instance().dropped());
      out += ",\"enabled\":";
      out += obs::trace_enabled() ? "true" : "false";
      out += '}';
      return out;
    }
    case Request::Cmd::kIngest: {
      const obs::Span span("serve.cmd_ingest");
      if (ingest_ == nullptr) {
        // A single-model server has no registry to promote into and no
        // tenant namespace; the rejection is a pure function of the
        // request, so it participates in byte-identity like unknown-model.
        note_response(kErrUnknownModel);
        return render_error(
            req.id_json, version,
            {kErrUnknownModel,
             "ingest requires registry mode (serve --registry)"});
      }
      const std::string tenant =
          req.tenant.empty() ? registry::kDefaultTenant : req.tenant;
      ExecutionRecord record;
      record.params = req.params;
      record.nprocs = req.nprocs;
      record.runtime = req.runtime;
      record.run_id = req.run_id;
      auto appended = ingest_->append(tenant, record);
      if (!appended) {
        const std::string code = error_code_name(appended.error().code);
        note_response(code);
        return render_error(req.id_json, version,
                            {code, appended.error().to_string()});
      }
      note_response("ok");
      std::string out = prefix("ingest");
      out += ",\"tenant\":";
      out += obs::json_quote(tenant);
      out += ",\"records\":";
      out += std::to_string(*appended);
      out += '}';
      return out;
    }
    case Request::Cmd::kRetrain: {
      const obs::Span span("serve.cmd_retrain");
      if (ingest_ == nullptr) {
        note_response(kErrUnknownModel);
        return render_error(
            req.id_json, version,
            {kErrUnknownModel,
             "retrain requires registry mode (serve --registry)"});
      }
      const std::string tenant =
          req.tenant.empty() ? registry::kDefaultTenant : req.tenant;
      auto outcome = ingest_->retrain_now(tenant);
      if (!outcome) {
        const std::string code = error_code_name(outcome.error().code);
        note_response(code);
        return render_error(req.id_json, version,
                            {code, outcome.error().to_string()});
      }
      note_response("ok");
      std::string out = prefix("retrain");
      out += ",\"tenant\":";
      out += obs::json_quote(tenant);
      out += ",\"verdict\":";
      out += obs::json_quote(outcome->marker.verdict);
      out += ",\"promoted\":";
      out += outcome->promoted ? "true" : "false";
      out += ",\"model_version\":";
      out += std::to_string(outcome->marker.version);
      out += ",\"records\":";
      out += std::to_string(outcome->marker.records);
      out += ",\"holdout_scale\":";
      out += std::to_string(outcome->marker.holdout_scale);
      out += ",\"candidate_mape\":";
      obs::json_number_into(out, outcome->marker.candidate_mape);
      out += ",\"incumbent_mape\":";
      obs::json_number_into(out, outcome->marker.incumbent_mape);
      out += ",\"quarantined\":";
      out += std::to_string(outcome->quarantined);
      out += ",\"warm_scales\":";
      out += std::to_string(outcome->warm_scales);
      out += '}';
      return out;
    }
    case Request::Cmd::kShutdown: {
      note_response("ok");
      std::string out = prefix("shutdown");
      out += '}';
      return out;
    }
    case Request::Cmd::kPredict:
      break;  // never routed here
  }
  note_response("bad-request");
  return render_error(req.id_json, version,
                      {"bad-request", "unroutable command"});
}

std::string Server::health_json(const std::string& id_json) const {
  // The readiness probe a load balancer or watchdog polls: liveness plus
  // *mode*. "ok" serves everything, "degraded" serves cache hits only,
  // "unavailable" has no model at all. Every field is a pure function of
  // the request stream and the injectable clock, so probe responses are
  // byte-stable under replay.
  const auto snap = snapshot();
  // Registry mode has no single snapshot: readiness is the pool's (the
  // store may be empty — requests then fail per-tenant, not globally).
  const char* status =
      model_pool_ ? (degraded() ? "degraded" : "ok")
                  : (!snap ? "unavailable"
                           : (degraded() ? "degraded" : "ok"));
  std::string out = "{";
  if (!id_json.empty()) {
    out += "\"id\":";
    out += id_json;
    out += ',';
  }
  out += "\"ok\":true,\"cmd\":\"health\",\"schema\":\"";
  out += kProtocolSchema;
  out += "\",\"model_version\":";
  out += std::to_string(snap ? snap->version : 0);
  out += ",\"status\":\"";
  out += status;
  out += "\",\"uptime_ms\":";
  out += std::to_string(uptime_ms());
  out += ",\"max_pending\":";
  out += std::to_string(opts_.max_pending);
  out += ",\"shed\":";
  out += std::to_string(sheds_);
  out += ",\"too_large\":";
  out += std::to_string(too_large_);
  out += ",\"deadline_expired\":";
  out += std::to_string(deadline_expired_);
  out += ",\"reload_failure_streak\":";
  out += std::to_string(reload_failure_streak_);
  out += ",\"responses\":";
  append_code_counters(out);
  if (model_pool_) append_registry_block(out);
  if (ingest_) append_ingest_block(out);
  if ((!model_pool_ && !snap) || degraded()) {
    out += ",\"retry_after_ms\":";
    out += std::to_string(opts_.retry_after_ms);
  }
  out += '}';
  return out;
}

bool Server::run(std::istream& in, std::ostream& out) {
  const obs::Span span("serve.session");
  std::vector<Pending> batch;
  std::string line;
  for (;;) {
    poll_reloads();
    const LineRead status =
        read_line_bounded(in, &line, opts_.max_line_bytes);
    if (status == LineRead::kEof) break;
    if (status == LineRead::kTooLong) {
      ++too_large_;
      obs::count("serve.too_large");
      Pending pending;
      pending.trace.code = kErrTooLarge;
      pending.response = render_error(
          "", model_version(),
          {kErrTooLarge,
           "request line exceeds max_line_bytes=" +
               std::to_string(opts_.max_line_bytes) + "; line discarded"});
      batch.push_back(std::move(pending));
    } else {
      if (is_blank(line)) continue;
      auto control = enqueue(line, &batch);
      if (control.has_value()) {
        flush(&batch, out);
        out << handle_control(*control) << '\n';
        out.flush();
        if (control->cmd == Request::Cmd::kShutdown) return true;
        if (!out) return false;
        continue;
      }
    }
    // Flush when the batch is full, or as soon as the input would block —
    // an interactive client gets its answer now, a replayed burst batches.
    if (batch.size() >= opts_.batch_max || in.rdbuf()->in_avail() <= 0) {
      flush(&batch, out);
      // A dead output stream means the client is gone (EPIPE, timeout):
      // stop spending compute on responses nobody will read.
      if (!out) return false;
    }
  }
  flush(&batch, out);
  return false;
}

std::string Server::handle_line(const std::string& line) {
  if (line.size() > opts_.max_line_bytes) {
    ++too_large_;
    obs::count("serve.too_large");
    note_response(kErrTooLarge);
    return render_error(
        "", model_version(),
        {kErrTooLarge,
         "request line exceeds max_line_bytes=" +
             std::to_string(opts_.max_line_bytes) + "; line discarded"});
  }
  if (is_blank(line)) return "";
  std::vector<Pending> batch;
  auto control = enqueue(line, &batch);
  if (control.has_value()) return handle_control(*control);
  std::ostringstream rendered;
  flush(&batch, rendered);
  std::string response = rendered.str();
  if (!response.empty() && response.back() == '\n') response.pop_back();
  return response;
}

std::uint64_t Server::uptime_ms() const {
  const std::uint64_t now = now_ms();
  return now > start_ms_ ? now - start_ms_ : 0;
}

void Server::note_response(const std::string& code) {
  ++responses_by_code_[code];
}

void Server::append_code_counters(std::string& out) const {
  out += '{';
  bool first = true;
  for (const auto& [code, n] : responses_by_code_) {
    if (!first) out += ',';
    first = false;
    out += obs::json_quote(code);
    out += ':';
    out += std::to_string(n);
  }
  out += '}';
}

std::string Server::render_health_json() const { return health_json(""); }

void Server::append_registry_block(std::string& out) const {
  // Pool totals plus per-tenant counters, sorted by tenant name (the
  // pool's stats() is already sorted) — byte-stable under replay because
  // every counter is driven serially from the serving thread.
  out += ",\"registry\":{\"resident\":";
  out += std::to_string(model_pool_->resident_count());
  out += ",\"resident_bytes\":";
  out += std::to_string(model_pool_->resident_bytes());
  out += ",\"max_resident_models\":";
  out += std::to_string(model_pool_->options().max_resident_models);
  out += ",\"max_resident_bytes\":";
  out += std::to_string(model_pool_->options().max_resident_bytes);
  out += ",\"evictions\":";
  out += std::to_string(model_pool_->total_evictions());
  out += ",\"tenants\":{";
  bool first = true;
  for (const registry::TenantStats& t : model_pool_->stats()) {
    if (!first) out += ',';
    first = false;
    out += obs::json_quote(t.tenant);
    out += ":{\"version\":";
    out += std::to_string(t.version);
    out += ",\"resident\":";
    out += t.resident ? "true" : "false";
    out += ",\"hits\":";
    out += std::to_string(t.hits);
    out += ",\"loads\":";
    out += std::to_string(t.loads);
    out += ",\"evictions\":";
    out += std::to_string(t.evictions);
    out += ",\"load_failures\":";
    out += std::to_string(t.load_failures);
    if (!t.last_error.empty()) {
      out += ",\"last_error\":";
      out += obs::json_quote(t.last_error);
    }
    out += '}';
  }
  out += "}}";
}

void Server::append_ingest_block(std::string& out) const {
  // Session totals plus per-tenant verdict state, sorted by tenant (the
  // scheduler's stats() is already sorted). Counters are per-process on
  // purpose: the log is the durable account, and session-local counters
  // keep replayed response streams byte-identical even when two runs
  // share a store.
  const ingest::IngestScheduler::Totals totals = ingest_->totals();
  out += ",\"ingest\":{\"appended\":";
  out += std::to_string(totals.appended);
  out += ",\"retrains\":";
  out += std::to_string(totals.retrains);
  out += ",\"promotions\":";
  out += std::to_string(totals.promotions);
  out += ",\"rejections\":";
  out += std::to_string(totals.rejections);
  out += ",\"in_flight\":";
  out += std::to_string(totals.in_flight);
  out += ",\"retrain_records\":";
  out += std::to_string(opts_.retrain_records);
  out += ",\"retrain_interval_ms\":";
  out += std::to_string(opts_.retrain_interval_ms);
  out += ",\"tenants\":{";
  bool first = true;
  for (const auto& [tenant, stats] : ingest_->stats()) {
    if (!first) out += ',';
    first = false;
    out += obs::json_quote(tenant);
    out += ":{\"appended\":";
    out += std::to_string(stats.appended);
    out += ",\"retrains\":";
    out += std::to_string(stats.retrains);
    out += ",\"promotions\":";
    out += std::to_string(stats.promotions);
    out += ",\"rejections\":";
    out += std::to_string(stats.rejections);
    out += ",\"quarantined\":";
    out += std::to_string(stats.quarantined);
    out += ",\"in_flight\":";
    out += stats.in_flight ? "true" : "false";
    if (!stats.last_verdict.empty()) {
      out += ",\"last_verdict\":";
      out += obs::json_quote(stats.last_verdict);
      out += ",\"last_version\":";
      out += std::to_string(stats.last_version);
      out += ",\"holdout_scale\":";
      out += std::to_string(stats.last_holdout_scale);
      out += ",\"candidate_mape\":";
      obs::json_number_into(out, stats.last_candidate_mape);
      out += ",\"incumbent_mape\":";
      obs::json_number_into(out, stats.last_incumbent_mape);
      out += ",\"warm_scales\":";
      out += std::to_string(stats.warm_scales);
    }
    out += '}';
  }
  out += "}}";
}

void Server::slow_log_insert(const RequestTrace& trace) {
  if (slow_log_.size() < kSlowLogEntries) {
    slow_log_.push_back(trace);
    return;
  }
  std::size_t min_at = 0;
  for (std::size_t i = 1; i < slow_log_.size(); ++i) {
    if (slow_log_[i].total_us() < slow_log_[min_at].total_us()) min_at = i;
  }
  if (trace.total_us() > slow_log_[min_at].total_us()) {
    slow_log_[min_at] = trace;
  }
}

void Server::note_write_drained(std::uint64_t request_id) noexcept {
  if (request_id == 0) return;
  for (RequestTrace& t : slow_log_) {
    if (t.id == request_id) {
      if (t.write_drained_us == 0) t.write_drained_us = steady_us();
      return;
    }
  }
}

std::vector<Server::RequestTrace> Server::slow_log() const {
  std::vector<RequestTrace> out = slow_log_;
  std::sort(out.begin(), out.end(),
            [](const RequestTrace& a, const RequestTrace& b) {
              if (a.total_us() != b.total_us()) {
                return a.total_us() > b.total_us();
              }
              return a.id < b.id;
            });
  return out;
}

std::string Server::render_stats_json() const {
  const std::uint64_t now = now_ms();
  const auto snap = snapshot();
  const char* status =
      model_pool_ ? (degraded() ? "degraded" : "ok")
                  : (!snap ? "unavailable"
                           : (degraded() ? "degraded" : "ok"));

  std::string out = "{\"schema\":\"hpcp-stats/1\",\"uptime_ms\":";
  out += std::to_string(now > start_ms_ ? now - start_ms_ : 0);
  out += ",\"model_version\":";
  out += std::to_string(snap ? snap->version : 0);
  out += ",\"status\":\"";
  out += status;
  out += "\",\"requests\":";
  out += std::to_string(requests_served_);
  out += ",\"queue_depth\":";
  out += std::to_string(last_queue_depth_);
  out += ",\"batch_lines\":";
  out += std::to_string(last_batch_lines_);
  out += ",\"batch_max\":";
  out += std::to_string(opts_.batch_max);
  out += ",\"batch_occupancy\":";
  obs::json_number_into(
      out, opts_.batch_max > 0
               ? static_cast<double>(last_batch_lines_) /
                     static_cast<double>(opts_.batch_max)
               : 0.0);
  out += ",\"cache_hits\":";
  out += std::to_string(cache_.hits());
  out += ",\"cache_misses\":";
  out += std::to_string(cache_.misses());
  out += ",\"cache_entries\":";
  out += std::to_string(cache_.size());
  out += ",\"cache_capacity\":";
  out += std::to_string(cache_.max_entries());
  out += ",\"cache_hit_rate\":";
  const std::uint64_t lookups = cache_.hits() + cache_.misses();
  obs::json_number_into(
      out, lookups > 0 ? static_cast<double>(cache_.hits()) /
                             static_cast<double>(lookups)
                       : 0.0);
  out += ",\"shed\":";
  out += std::to_string(sheds_);
  out += ",\"too_large\":";
  out += std::to_string(too_large_);
  out += ",\"deadline_expired\":";
  out += std::to_string(deadline_expired_);
  out += ",\"degraded_rejects\":";
  out += std::to_string(degraded_rejects_);
  out += ",\"responses\":";
  append_code_counters(out);
  if (model_pool_) append_registry_block(out);
  if (ingest_) append_ingest_block(out);

  // 1s / 10s / 60s trailing windows over the rolling rings. Latency
  // quantiles are reported as the upper edge of the containing histogram
  // bucket, in microseconds.
  out += ",\"windows\":[";
  static constexpr std::uint64_t kWindowsS[] = {1, 10, 60};
  for (std::size_t w = 0; w < 3; ++w) {
    if (w > 0) out += ',';
    const std::uint64_t window_ms = kWindowsS[w] * 1000;
    const std::uint64_t requests = roll_requests_.sum(now, window_ms);
    const std::uint64_t shed = roll_sheds_.sum(now, window_ms);
    const std::uint64_t hits = roll_cache_hits_.sum(now, window_ms);
    const std::uint64_t misses = roll_cache_misses_.sum(now, window_ms);
    const auto latency = roll_latency_.window(now, window_ms);
    const auto bounds = roll_latency_.bounds();
    out += "{\"window_s\":";
    out += std::to_string(kWindowsS[w]);
    out += ",\"requests\":";
    out += std::to_string(requests);
    out += ",\"shed\":";
    out += std::to_string(shed);
    out += ",\"shed_rate\":";
    obs::json_number_into(
        out, requests > 0 ? static_cast<double>(shed) /
                                static_cast<double>(requests)
                          : 0.0);
    out += ",\"cache_hit_rate\":";
    obs::json_number_into(
        out, hits + misses > 0 ? static_cast<double>(hits) /
                                     static_cast<double>(hits + misses)
                               : 0.0);
    out += ",\"latency_p50_us\":";
    obs::json_number_into(out, latency.quantile(0.50, bounds) * 1e6);
    out += ",\"latency_p95_us\":";
    obs::json_number_into(out, latency.quantile(0.95, bounds) * 1e6);
    out += ",\"latency_p99_us\":";
    obs::json_number_into(out, latency.quantile(0.99, bounds) * 1e6);
    out += '}';
  }
  out += ']';

  out += ",\"slow_log\":[";
  const auto slowest = slow_log();
  for (std::size_t i = 0; i < slowest.size(); ++i) {
    const RequestTrace& t = slowest[i];
    if (i > 0) out += ',';
    out += "{\"id\":";
    out += std::to_string(t.id);
    out += ",\"code\":";
    out += obs::json_quote(t.code.empty() ? "ok" : t.code);
    out += ",\"cache_hit\":";
    out += t.cache_hit ? "true" : "false";
    out += ",\"total_us\":";
    out += std::to_string(t.total_us());
    out += ",\"admit_us\":";
    out += std::to_string(t.admit_us);
    out += ",\"dequeue_us\":";
    out += std::to_string(t.dequeue_us);
    out += ",\"batch_start_us\":";
    out += std::to_string(t.batch_start_us);
    out += ",\"predict_done_us\":";
    out += std::to_string(t.predict_done_us);
    out += ",\"render_us\":";
    out += std::to_string(t.render_us);
    out += ",\"write_drained_us\":";
    out += std::to_string(t.write_drained_us);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace hpcp::serve
