#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>

#include "src/common/error.hpp"
#include "src/serve/faults.hpp"
#include "src/serve/server.hpp"

/// \file tcp.hpp (serve)
/// Minimal POSIX TCP front-end for the prediction server: binds a
/// listening socket on localhost, then serves connections one at a time —
/// each connection is one `Server::run` session over a socket-backed
/// stream (fd_stream.hpp), so the line protocol, batching, and determinism
/// contract are identical to `--stdio` mode. A {"cmd":"shutdown"} on any
/// connection stops the listener; every other way a connection can end —
/// orderly EOF, a mid-line or mid-response disconnect, a read/write
/// timeout, EPIPE from a vanished peer — is a logged lifecycle event
/// followed by the next accept, never process death (SIGPIPE is ignored
/// for the lifetime of the listener). Sequential accept keeps responses
/// totally ordered per connection and the server single-writer, which is
/// what the bitwise determinism contract requires.

namespace hpcp::serve {

/// Knobs for one listener, all optional.
struct TcpOptions {
  /// Per-read/per-write deadline against a slow or stalled client, in
  /// milliseconds; <= 0 blocks forever (the seed behaviour). A timed-out
  /// connection is closed and logged; the daemon moves on to the next
  /// accept.
  int io_timeout_ms = -1;
  /// When non-null, receives the actually bound port once listening —
  /// with port 0 the kernel picks one, and tests need to find it without
  /// scraping the log stream.
  std::atomic<std::uint16_t>* bound_port = nullptr;
  /// Chaos hook applied to every connection's fd transport; nullptr in
  /// production (the CLI wires process_faults() here under
  /// HPCP_SERVE_FAULTS).
  FaultInjector* faults = nullptr;
};

/// Listens on 127.0.0.1:`port` and serves connections until a client sends
/// {"cmd":"shutdown"}. `log` receives one line per lifecycle event (bound
/// port, connection open, connection close + reason). Returns an Io error
/// when the socket cannot be created or bound.
[[nodiscard]] Expected<void> run_tcp_server(Server& server,
                                            std::uint16_t port,
                                            std::ostream& log,
                                            const TcpOptions& opts = {});

}  // namespace hpcp::serve
