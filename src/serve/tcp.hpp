#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>

#include "src/common/error.hpp"
#include "src/serve/faults.hpp"
#include "src/serve/server.hpp"

/// \file tcp.hpp (serve)
/// Epoll-based POSIX TCP front-end for the prediction server: binds a
/// listening socket on localhost and serves many concurrent connections
/// from one event loop. Each connection gets bounded line reassembly (the
/// same max_line_bytes discard-and-typed-error contract as `--stdio`
/// mode), and every epoll wake drains the complete lines of *all* ready
/// connections into a single Server::handle_batch window — cross-
/// connection micro-batching: one batched predict_curves call serves the
/// whole flush window, and responses are routed back to their connections
/// afterwards.
///
/// Ordering contract: requests from one connection are answered on that
/// connection, in the order they arrived, byte-identical to replaying the
/// same lines through `--stdio` mode — which connection a request rode in
/// on, and what its neighbours in the window were, never changes its
/// response bytes (the Server determinism contract does the heavy
/// lifting; the loop only ever appends responses per connection in
/// request order). *Cross*-connection order within a window is pinned to
/// connection-accept order; `seq_log` records it (`seq <n> conn <id>`,
/// one line per admitted request) so a concurrent replay can be audited.
///
/// A {"cmd":"shutdown"} on any connection stops the listener; every other
/// way a connection can end — orderly EOF, a mid-line or mid-response
/// disconnect, idling past the io timeout, EPIPE from a vanished peer —
/// is a logged lifecycle event followed by more serving, never process
/// death (SIGPIPE is ignored for the lifetime of the listener).

namespace hpcp::serve {

/// Knobs for one listener, all optional.
struct TcpOptions {
  /// Idle deadline per connection in milliseconds: a connection with no
  /// read/write progress for this long is closed ("timeout" lifecycle
  /// event) and the daemon keeps serving the others. <= 0 means no
  /// deadline (connections may idle forever); the CLI defaults the
  /// daemon path to a finite value and reserves an explicit flag for
  /// "block forever".
  int io_timeout_ms = -1;
  /// Concurrent-connection bound; a connection accepted above the bound
  /// is closed immediately ("rejected (capacity)" lifecycle event).
  std::size_t max_connections = 256;
  /// When non-null, receives the actually bound port once listening —
  /// with port 0 the kernel picks one, and tests need to find it without
  /// scraping the log stream.
  std::atomic<std::uint16_t>* bound_port = nullptr;
  /// When non-null, receives one `seq <n> conn <id>` line per admitted
  /// request in global admission order — the audit trail for cross-
  /// connection batching.
  std::ostream* seq_log = nullptr;
  /// Chaos hook applied to every connection's reads/writes; nullptr in
  /// production (the CLI wires process_faults() here under
  /// HPCP_SERVE_FAULTS).
  FaultInjector* faults = nullptr;
  /// Admin scrape plane (see admin.hpp): when >= 0, a second listener on
  /// 127.0.0.1:`admin_port` joins the SAME epoll loop and answers HTTP
  /// GET /metrics, /healthz and /statsz. Admin connections never enter
  /// handle_batch and are never fault-injected, so scraping cannot
  /// perturb data-plane response bytes. -1 (default) disables the plane.
  int admin_port = -1;
  /// Like `bound_port`, but for the admin listener (port 0 supported).
  std::atomic<std::uint16_t>* admin_bound_port = nullptr;
  /// Concurrent admin-connection bound; scrapers above it are closed
  /// immediately. Deliberately small — this is a diagnostics plane.
  std::size_t max_admin_connections = 8;
};

/// Listens on 127.0.0.1:`port` and serves connections until a client sends
/// {"cmd":"shutdown"}. `log` receives one line per lifecycle event (bound
/// port, connection open, connection close + reason). Returns an Io error
/// when the socket cannot be created or bound.
[[nodiscard]] Expected<void> run_tcp_server(Server& server,
                                            std::uint16_t port,
                                            std::ostream& log,
                                            const TcpOptions& opts = {});

}  // namespace hpcp::serve
