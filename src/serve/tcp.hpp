#pragma once

#include <cstdint>
#include <iosfwd>

#include "src/common/error.hpp"
#include "src/serve/server.hpp"

/// \file tcp.hpp (serve)
/// Minimal POSIX TCP front-end for the prediction server: binds a
/// listening socket on localhost, then serves connections one at a time —
/// each connection is one `Server::run` session over a socket-backed
/// stream, so the line protocol, batching, and determinism contract are
/// identical to `--stdio` mode. A {"cmd":"shutdown"} on any connection
/// stops the listener; a plain disconnect just moves on to the next
/// accept. Sequential accept keeps responses totally ordered per
/// connection and the server single-writer, which is what the bitwise
/// determinism contract requires.

namespace hpcp::serve {

/// Listens on 127.0.0.1:`port` and serves connections until a client sends
/// {"cmd":"shutdown"}. `log` receives one line per lifecycle event (bound
/// port, connection open/close). Returns an Io error when the socket
/// cannot be created or bound.
[[nodiscard]] Expected<void> run_tcp_server(Server& server,
                                            std::uint16_t port,
                                            std::ostream& log);

}  // namespace hpcp::serve
