#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/two_level_model.hpp"
#include "src/obs/obs.hpp"
#include "src/serve/prediction_cache.hpp"
#include "src/serve/protocol.hpp"

/// \file server.hpp (serve)
/// The long-lived prediction server behind `hpcpredict_cli serve`: loads a
/// model archive once, then answers `hpcp-serve/1` request lines
/// (protocol.hpp) until EOF or a shutdown command.
///
/// Request flow: lines are micro-batched (up to `batch_max`, flushed early
/// whenever the input would block so interactive clients never wait on a
/// timer), each batch resolves cache hits, runs the misses through one
/// batched InterpolationLevel::predict_curves call, fans the per-row
/// level-2 evaluation out over the worker pool, then renders responses
/// serially in request order.
///
/// Determinism contract: the response byte stream is identical for any
/// worker count and any cache configuration — per-row predictions are
/// independent of batch composition, cached values are the exact doubles
/// the batched path produced, rendering is canonical (jsonlite writers),
/// and all merges/inserts happen serially in request order.
///
/// Hot reload: SIGHUP (via reload_flag()) or {"cmd":"reload"} swaps in a
/// freshly loaded snapshot atomically — in-flight batches finished on the
/// old shared_ptr snapshot, so no request ever sees a torn model — bumps
/// the advertised model_version, and clears the prediction cache. A failed
/// reload (missing/corrupt archive) reports a typed error and leaves the
/// old model serving.

namespace hpcp::serve {

struct ServeOptions {
  /// Worker threads for the batched level-2 fan-out: 0 = the process-global
  /// pool; N >= 1 builds a dedicated pool of that size (workers register
  /// as `serve-worker-<i>` in traces).
  std::size_t threads = 0;
  /// Micro-batch bound: at most this many predict requests are grouped
  /// into one batched inference call.
  std::size_t batch_max = 32;
  /// Prediction-cache capacity in entries ((params, scale) pairs);
  /// 0 disables caching.
  std::size_t cache_entries = 4096;
  std::size_t cache_shards = 8;
};

/// Process-wide asynchronous reload request, safe to set from a SIGHUP
/// handler (lock-free atomic store only). Server::run polls and clears it
/// between batches and reloads from the current model's source path.
[[nodiscard]] std::atomic<bool>& reload_flag() noexcept;

class Server {
 public:
  explicit Server(ServeOptions opts = {});

  /// Loads (or hot-reloads) the model from `path`. On success the new
  /// snapshot is installed, model_version is bumped, and the cache is
  /// cleared; on failure (Io / BadData) the previous model keeps serving.
  [[nodiscard]] Expected<void> load_model_file(const std::string& path);

  /// Installs an in-process model (tests, benches). `source_path` is what
  /// a later {"cmd":"reload"} without an explicit path will re-read.
  void set_model(TwoLevelModel model, std::string source_path);

  /// 0 until the first successful load; bumped by every successful reload.
  [[nodiscard]] std::uint64_t model_version() const;

  /// Serves request lines from `in` until EOF or {"cmd":"shutdown"};
  /// responses go to `out`, one line per request, in request order.
  /// Returns true iff a shutdown command ended the loop.
  bool run(std::istream& in, std::ostream& out);

  /// Processes exactly one request line (a batch of one) and returns its
  /// response line — byte-identical to what run() would emit. Test/bench
  /// entry point; shutdown is acknowledged but only run() loops can stop.
  [[nodiscard]] std::string handle_line(const std::string& line);

  [[nodiscard]] const ServeOptions& options() const noexcept {
    return opts_;
  }
  [[nodiscard]] const PredictionCache& cache() const noexcept {
    return cache_;
  }
  /// Total predict requests answered (cached or computed) since start.
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_served_;
  }

 private:
  /// Immutable view of one loaded model; swapped wholesale on reload.
  struct Snapshot {
    TwoLevelModel model;
    std::uint64_t version = 0;
    std::string source_path;
    std::vector<std::size_t> default_scales;
    std::size_t num_features = 0;
  };

  /// One request line waiting in the current micro-batch.
  struct Pending {
    Request req;
    std::string response;  ///< pre-rendered (parse error) when non-empty
    obs::Stopwatch watch;  ///< started when the line was read
  };

  [[nodiscard]] std::shared_ptr<const Snapshot> snapshot() const;
  void install(Snapshot snap);

  /// Parses a line into the batch, or returns the control request (ping /
  /// reload / stats / shutdown) that must flush the batch first.
  [[nodiscard]] std::optional<Request> enqueue(
      const std::string& line, std::vector<Pending>* batch);

  /// Predicts + renders every pending request, in order.
  void flush(std::vector<Pending>* batch, std::ostream& out);

  /// Ping / reload / stats / shutdown responses.
  [[nodiscard]] std::string handle_control(const Request& req);

  ServeOptions opts_;
  std::unique_ptr<ThreadPool> own_pool_;  ///< when opts_.threads >= 1
  ThreadPool* pool_ = nullptr;            ///< nullptr = global pool
  PredictionCache cache_;

  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const Snapshot> snapshot_;

  std::uint64_t requests_served_ = 0;
};

}  // namespace hpcp::serve
