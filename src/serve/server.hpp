#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/two_level_model.hpp"
#include "src/ingest/scheduler.hpp"
#include "src/obs/obs.hpp"
#include "src/registry/residency.hpp"
#include "src/serve/prediction_cache.hpp"
#include "src/serve/protocol.hpp"

/// \file server.hpp (serve)
/// The long-lived prediction server behind `hpcpredict_cli serve`: loads a
/// model archive once, then answers `hpcp-serve/1` request lines
/// (protocol.hpp) until EOF or a shutdown command.
///
/// Request flow: lines are read with a hard byte bound (an over-long line
/// is discarded and answered with a typed "too-large" error, never
/// buffered without limit), micro-batched (up to `batch_max`, flushed
/// early whenever the input would block so interactive clients never wait
/// on a timer), each batch resolves cache hits, runs the misses through
/// one batched InterpolationLevel::predict_curves call, fans the per-row
/// level-2 evaluation out over the worker pool, then renders responses
/// serially in request order.
///
/// Failure model (DESIGN.md "Failure model & degraded modes"):
///   - Admission control: at most `max_pending` admitted-but-unanswered
///     predict requests; overflow is shed immediately with a typed
///     "overloaded" error carrying a retry_after_ms hint. Shedding is a
///     pure function of the request stream and options, so it is as
///     replayable as everything else.
///   - Deadlines: with `request_deadline_ms` set, a request still
///     unanswered when its deadline passes is answered with a typed
///     "deadline" error instead of stale data. The clock is injectable
///     (`clock_ms`) so deadline behaviour is testable without wall time.
///   - Degraded cache-only mode: entered when reloads keep failing
///     (`degraded_reload_streak` consecutive failures) or admission stays
///     saturated (`degraded_shed_streak` consecutive sheds). While
///     degraded, cache hits are served normally and misses get a typed
///     "degraded" error; a successful reload or relieved queue exits the
///     mode. {"cmd":"health"} reports the current mode and counters.
///   - Reload retry: a failed reload (SIGHUP or {"cmd":"reload"}) is
///     retried with capped exponential backoff
///     (`reload_backoff_initial_ms` doubling up to
///     `reload_backoff_max_ms`) instead of being dropped; the old model
///     keeps serving throughout.
///
/// Determinism contract: the *non-degraded* response byte stream is
/// identical for any worker count and any cache configuration — per-row
/// predictions are independent of batch composition, cached values are the
/// exact doubles the batched path produced, rendering is canonical
/// (jsonlite writers), and all merges/inserts happen serially in request
/// order. Degraded responses (overloaded / degraded / deadline /
/// too-large) depend on the resilience options and injected clock by
/// design and are exempt.
///
/// Hot reload: SIGHUP (via reload_flag()) or {"cmd":"reload"} swaps in a
/// freshly loaded snapshot atomically — in-flight batches finish on the
/// old shared_ptr snapshot, so no request ever sees a torn model — bumps
/// the advertised model_version, and clears the prediction cache. A failed
/// reload (missing/corrupt/torn archive) reports a typed error, leaves the
/// old model serving, and schedules a backoff retry.
///
/// Registry mode (attach_registry): instead of one fixed model the server
/// fronts a registry::ModelPool — a predict request's optional "model"
/// field names the tenant to serve from (absent = "default"), resolved
/// per request against the LRU of resident models. Batches still share
/// micro-batch windows across tenants; the compute step groups rows by
/// resolved model, one batched level-1 call per distinct model, and every
/// cache insert stays serial in request order, so the response stream is
/// byte-identical to serving each tenant from its own single-model server.
/// A tenant whose archive fails to load degrades only that tenant (typed
/// error; pool keeps any old resident epoch serving); {"cmd":"reload",
/// "tenant":T} swaps one tenant, a tenant-less reload (or SIGHUP)
/// rescans the store and reloads every resident tenant. health/stats gain
/// a "registry" block with per-tenant counters.

namespace hpcp::serve {

struct ServeOptions {
  /// Worker threads for the batched level-2 fan-out: 0 = the process-global
  /// pool; N >= 1 builds a dedicated pool of that size (workers register
  /// as `serve-worker-<i>` in traces).
  std::size_t threads = 0;
  /// Micro-batch bound: at most this many request lines (admitted or
  /// already rendered) are grouped before a flush.
  std::size_t batch_max = 32;
  /// Prediction-cache capacity in entries ((params, scale) pairs);
  /// 0 disables caching.
  std::size_t cache_entries = 4096;
  std::size_t cache_shards = 8;

  /// Hard bound on one request line; longer lines are discarded and
  /// answered with a typed "too-large" error (default 1 MiB).
  std::size_t max_line_bytes = 1 << 20;
  /// Admission bound: max admitted-but-unanswered predict requests. A
  /// request arriving above the bound is shed with "overloaded". The
  /// effective in-flight bound is min(batch_max, max_pending) because a
  /// flush drains the queue; the default never sheds in normal operation.
  std::size_t max_pending = 256;
  /// Retry-After hint attached to overloaded/degraded responses.
  std::uint64_t retry_after_ms = 50;
  /// Per-request deadline in milliseconds; 0 disables (default). Checked
  /// at flush time against the injectable clock.
  std::uint64_t request_deadline_ms = 0;
  /// Consecutive reload failures that flip the server into degraded
  /// cache-only mode.
  std::size_t degraded_reload_streak = 3;
  /// Consecutive shed admissions that flip the server into degraded
  /// cache-only mode (relieved as soon as an admission succeeds).
  std::size_t degraded_shed_streak = 1024;
  /// Backoff schedule for automatic reload retries after a failure:
  /// initial, then doubling, capped.
  std::uint64_t reload_backoff_initial_ms = 1000;
  std::uint64_t reload_backoff_max_ms = 30000;
  /// Registry mode (attach_registry): resident-model LRU caps forwarded
  /// to the ModelPool — count cap and byte budget (0 = unlimited bytes).
  std::size_t max_resident_models = 4;
  std::uint64_t max_resident_bytes = 0;
  /// Continuous-learning triggers, forwarded to the IngestScheduler
  /// (registry mode only). `retrain_records` run records since the last
  /// attempt fire a background retrain; `retrain_interval_ms` retrains any
  /// tenant with new data on a wall-clock cadence. Both default off —
  /// {"cmd":"retrain"} always works regardless.
  std::size_t retrain_records = 0;
  std::uint64_t retrain_interval_ms = 0;
  /// Monotonic millisecond clock; unset = std::chrono::steady_clock. The
  /// chaos harness injects a deterministic skipping clock here.
  std::function<std::uint64_t()> clock_ms = {};
};

/// Process-wide asynchronous reload request, safe to set from a SIGHUP
/// handler (lock-free atomic store only). Server::run polls and clears it
/// between batches and reloads from the current model's source path.
[[nodiscard]] std::atomic<bool>& reload_flag() noexcept;

class Server {
 public:
  explicit Server(ServeOptions opts = {});

  /// Loads (or hot-reloads) the model from `path`. On success the new
  /// snapshot is installed, model_version is bumped, and the cache is
  /// cleared; on failure (Io / BadData) the previous model keeps serving.
  [[nodiscard]] Expected<void> load_model_file(const std::string& path);

  /// Installs an in-process model (tests, benches). `source_path` is what
  /// a later {"cmd":"reload"} without an explicit path will re-read.
  void set_model(TwoLevelModel model, std::string source_path);

  /// Switches the server to registry mode: opens (or creates) the model
  /// store at `root` and builds the resident-model pool under the
  /// max_resident_models / max_resident_bytes options. Mutually exclusive
  /// with the single-model snapshot in practice (the CLI enforces
  /// --model XOR --registry); loading is lazy, so attaching an empty
  /// store succeeds and requests fail per-tenant until models appear.
  [[nodiscard]] Expected<void> attach_registry(const std::string& root);

  /// True once attach_registry succeeded.
  [[nodiscard]] bool registry_mode() const noexcept {
    return model_pool_ != nullptr;
  }
  /// The resident-model pool (nullptr outside registry mode).
  [[nodiscard]] registry::ModelPool* model_pool() noexcept {
    return model_pool_.get();
  }
  /// The continuous-learning scheduler (nullptr outside registry mode).
  /// Serving-thread confined, like the pool it feeds.
  [[nodiscard]] ingest::IngestScheduler* ingest_scheduler() noexcept {
    return ingest_.get();
  }

  /// 0 until the first successful load; bumped by every successful reload.
  [[nodiscard]] std::uint64_t model_version() const;

  /// Serves request lines from `in` until EOF, a dead output stream (the
  /// client vanished), or {"cmd":"shutdown"}; responses go to `out`, one
  /// line per request, in request order. Returns true iff a shutdown
  /// command ended the loop.
  bool run(std::istream& in, std::ostream& out);

  /// Processes exactly one request line (a batch of one) and returns its
  /// response line — byte-identical to what run() would emit. Test/bench
  /// entry point; shutdown is acknowledged but only run() loops can stop.
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// One transport line submitted to handle_batch. `too_long` marks a line
  /// the transport already discarded for exceeding max_line_bytes; its
  /// text is ignored and a typed "too-large" error is rendered, exactly as
  /// run() does for an over-long stdio line.
  struct BatchLine {
    std::string text;
    bool too_long = false;
  };

  /// Result of handle_batch. responses[i] answers lines[i]; an empty
  /// string means "no response" (a blank line). `consumed` counts lines
  /// actually processed — it falls short of the input only when a
  /// shutdown command stopped the window, in which case `shutdown` is
  /// true and the later lines were never looked at.
  struct BatchOutcome {
    std::vector<std::string> responses;
    /// Lifecycle trace id per window slot (0 = the slot carried no
    /// admitted predict request). A transport that knows when a response
    /// actually left the process reports it via note_write_drained().
    std::vector<std::uint64_t> request_ids;
    std::size_t consumed = 0;
    bool shutdown = false;
  };

  /// Serves one window of request lines gathered by a concurrent
  /// transport: the epoll front-end drains every ready connection into a
  /// single call, so requests from different connections share micro-
  /// batches (chunked at batch_max) and one batched predict_curves call
  /// serves the whole flush window. Admission, control handling, and
  /// response bytes are identical to feeding the same lines through
  /// run() — position in the window is the only thing that matters, so
  /// per-connection response order and byte-identity are preserved no
  /// matter how many connections contributed.
  [[nodiscard]] BatchOutcome handle_batch(std::span<const BatchLine> lines);

  [[nodiscard]] const ServeOptions& options() const noexcept {
    return opts_;
  }
  [[nodiscard]] const PredictionCache& cache() const noexcept {
    return cache_;
  }
  /// Total predict requests answered (cached or computed) since start.
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_served_;
  }

  /// Currently in degraded cache-only mode (reload failures or admission
  /// saturation)?
  [[nodiscard]] bool degraded() const noexcept;
  /// Consecutive failed reloads since the last success.
  [[nodiscard]] std::uint64_t reload_failure_streak() const noexcept {
    return reload_failure_streak_;
  }
  /// Requests shed by admission control since start.
  [[nodiscard]] std::uint64_t sheds() const noexcept { return sheds_; }
  /// Over-long lines rejected since start.
  [[nodiscard]] std::uint64_t too_large_rejects() const noexcept {
    return too_large_;
  }
  /// Requests answered with a "deadline" error since start.
  [[nodiscard]] std::uint64_t deadline_rejects() const noexcept {
    return deadline_expired_;
  }

  // --- Live observability plane (DESIGN.md "Observability") -------------

  /// Slow-log capacity: the slowest-N completed requests are retained.
  static constexpr std::size_t kSlowLogEntries = 16;

  /// Lifecycle timestamps of one admitted predict request, microseconds on
  /// the raw steady clock (diagnostics; deliberately NOT the injectable
  /// clock, so stamping never perturbs deadline or chaos determinism).
  /// write_drained_us stays 0 until a transport reports the bytes gone.
  struct RequestTrace {
    std::uint64_t id = 0;
    std::uint64_t admit_us = 0;
    std::uint64_t dequeue_us = 0;
    std::uint64_t batch_start_us = 0;
    std::uint64_t predict_done_us = 0;
    std::uint64_t render_us = 0;
    std::uint64_t write_drained_us = 0;
    bool cache_hit = false;
    std::string code;  ///< response code; empty until rendered => "ok"

    /// admit -> write-drained when known, admit -> render otherwise.
    [[nodiscard]] std::uint64_t total_us() const noexcept {
      const std::uint64_t end =
          write_drained_us != 0 ? write_drained_us : render_us;
      return end > admit_us ? end - admit_us : 0;
    }
  };

  /// The `hpcp-stats/1` snapshot: uptime, model_version, per-code response
  /// counters, queue depth, batch occupancy, cache hit rate, 1s/10s/60s
  /// windowed aggregates, and the slow log. Served verbatim by the admin
  /// plane's GET /statsz and embedded in the {"cmd":"stats"} response.
  [[nodiscard]] std::string render_stats_json() const;

  /// The {"cmd":"health"} response body without a client id — what the
  /// admin plane's GET /healthz serves. Reading it never touches counters.
  [[nodiscard]] std::string render_health_json() const;

  /// Transport callback: the response for request `request_id` has been
  /// fully written to the peer (or flushed to the output stream). Stamps
  /// write_drained on the matching slow-log entry when it is retained.
  void note_write_drained(std::uint64_t request_id) noexcept;

  /// Slow log, slowest first (ties broken by id). Completed requests only.
  [[nodiscard]] std::vector<RequestTrace> slow_log() const;

  /// Milliseconds since construction on the injectable clock.
  [[nodiscard]] std::uint64_t uptime_ms() const;

 private:
  /// Immutable view of one loaded model; swapped wholesale on reload.
  struct Snapshot {
    TwoLevelModel model;
    std::uint64_t version = 0;
    std::string source_path;
    std::vector<std::size_t> default_scales;
    std::size_t num_features = 0;
  };

  /// One request line waiting in the current micro-batch.
  struct Pending {
    Request req;
    std::string response;  ///< pre-rendered (parse error, shed) when non-empty
    bool admitted = false;  ///< occupies an admission slot
    std::uint64_t arrival_ms = 0;  ///< set when deadlines are enabled
    obs::Stopwatch watch;  ///< started when the line was read
    RequestTrace trace;    ///< id != 0 once admitted; code set when rendered
  };

  [[nodiscard]] std::shared_ptr<const Snapshot> snapshot() const;
  void install(Snapshot snap);

  /// Monotonic milliseconds from opts_.clock_ms or steady_clock.
  [[nodiscard]] std::uint64_t now_ms() const;

  /// Reload `path`, tracking the failure streak and scheduling a capped
  /// exponential backoff retry on failure.
  Expected<void> try_reload(const std::string& path);
  /// SIGHUP flag and due backoff retries; called between batches.
  void poll_reloads();

  /// Parses a line into the batch, or returns the control request (ping /
  /// health / reload / stats / shutdown) that must flush the batch first.
  /// Applies admission control to predict requests.
  [[nodiscard]] std::optional<Request> enqueue(
      const std::string& line, std::vector<Pending>* batch);

  /// Predicts + renders every pending request in order: after resolve()
  /// every Pending carries its final response line. Shared by the stream
  /// loop (flush) and the window entry point (handle_batch).
  void resolve(std::vector<Pending>* batch);

  /// resolve() + emit to `out`, one line per request, then clear.
  void flush(std::vector<Pending>* batch, std::ostream& out);

  /// Ping / health / reload / stats / trace-dump / shutdown responses.
  [[nodiscard]] std::string handle_control(const Request& req);

  /// Health body shared by the control path and GET /healthz; `id_json`
  /// is prepended when non-empty.
  [[nodiscard]] std::string health_json(const std::string& id_json) const;

  /// Renders responses_by_code_ as a JSON object (keys sorted — std::map).
  void append_code_counters(std::string& out) const;

  /// Registry mode only: appends `,"registry":{...}` with pool totals and
  /// sorted per-tenant counters to a health/stats body.
  void append_registry_block(std::string& out) const;

  /// Registry mode only: appends `,"ingest":{...}` with the scheduler's
  /// session totals and sorted per-tenant verdict state.
  void append_ingest_block(std::string& out) const;

  /// Bumps the per-code response counter ("ok" or an error code); every
  /// rendered response line passes through here exactly once.
  void note_response(const std::string& code);

  /// Retains `trace` when it ranks among the slowest kSlowLogEntries.
  void slow_log_insert(const RequestTrace& trace);

  ServeOptions opts_;
  std::unique_ptr<ThreadPool> own_pool_;  ///< when opts_.threads >= 1
  ThreadPool* pool_ = nullptr;            ///< nullptr = global pool
  PredictionCache cache_;
  /// Registry mode: the resident-model LRU (serving-thread confined,
  /// like the resilience state). nullptr = classic single-model server.
  std::unique_ptr<registry::ModelPool> model_pool_;
  /// Registry mode: the continuous-learning loop (append / retrain /
  /// shadow-gated promote). Pumped between batches alongside reloads.
  std::unique_ptr<ingest::IngestScheduler> ingest_;

  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const Snapshot> snapshot_;

  std::uint64_t requests_served_ = 0;

  // Resilience state (all touched only from the serving thread).
  std::uint64_t reload_failure_streak_ = 0;
  std::uint64_t reload_backoff_ms_ = 0;
  std::uint64_t reload_retry_at_ms_ = 0;
  std::string reload_retry_path_;
  bool reload_retry_pending_ = false;
  std::uint64_t shed_streak_ = 0;
  bool degraded_saturated_ = false;
  std::uint64_t sheds_ = 0;
  std::uint64_t too_large_ = 0;
  std::uint64_t deadline_expired_ = 0;
  std::uint64_t degraded_rejects_ = 0;

  // Observability state (all touched only from the serving thread; the
  // admin plane shares that thread by construction — see tcp.hpp).
  std::uint64_t start_ms_ = 0;          ///< injectable-clock birth stamp
  std::uint64_t next_request_id_ = 0;   ///< monotonically increasing
  std::map<std::string, std::uint64_t> responses_by_code_;
  std::size_t last_queue_depth_ = 0;    ///< admitted entries at last flush
  std::size_t last_batch_lines_ = 0;    ///< batch size at last flush
  std::vector<RequestTrace> slow_log_;  ///< unordered; <= kSlowLogEntries

  // 1s buckets, 64 slots: windows up to 63s, so 1s/10s/60s all answerable.
  obs::RollingCounter roll_requests_{1000, 64};
  obs::RollingCounter roll_sheds_{1000, 64};
  obs::RollingCounter roll_cache_hits_{1000, 64};
  obs::RollingCounter roll_cache_misses_{1000, 64};
  obs::RollingHistogram roll_latency_{obs::default_time_bounds(), 1000, 64};
};

}  // namespace hpcp::serve
