#pragma once

#include <string>
#include <string_view>

/// \file admin.hpp (serve)
/// The admin scrape plane: a minimal HTTP/1.0 GET handler served from the
/// SAME epoll loop as the data plane (tcp.cpp registers the admin listener
/// in its epfd), so it needs no extra threads and — because admin requests
/// never enter Server::handle_batch — structurally cannot perturb the data
/// plane's response bytes.
///
/// Endpoints (all GET, one request per connection, Connection: close):
///   /metrics  Prometheus text exposition of the global MetricRegistry
///   /healthz  the health probe body ({"cmd":"health"} without an id);
///             HTTP 200 while a model is serving (ok or degraded),
///             503 when unavailable
///   /statsz   the hpcp-stats/1 snapshot (Server::render_stats_json)
/// Anything else is 404; non-GET methods are 405. The request head is
/// bounded (kMaxAdminRequestBytes) — an over-long head gets 431 and the
/// connection is closed.

namespace hpcp::serve {

class Server;

/// Hard bound on one admin request head; beyond it the reply is 431.
inline constexpr std::size_t kMaxAdminRequestBytes = 8192;

/// True once `inbuf` holds enough to route: a blank line ("\r\n\r\n" /
/// "\n\n") or simply the first newline — everything this plane needs is
/// on the request line, and request bodies are not part of it.
[[nodiscard]] bool admin_request_complete(std::string_view inbuf);

/// Serves one buffered admin request and returns the complete HTTP
/// response bytes to write. `inbuf` is everything read from the
/// connection; `overflow` marks a head that exceeded
/// kMaxAdminRequestBytes before completing.
[[nodiscard]] std::string handle_admin_request(Server& server,
                                               std::string_view inbuf,
                                               bool overflow);

}  // namespace hpcp::serve
