#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

/// \file protocol.hpp (serve)
/// The `hpcp-serve/1` wire protocol: one JSON object per line in, one JSON
/// object per line out, in request order. Designed for replayability — a
/// response line is a pure function of (request line, model version), so
/// identical request streams produce bitwise-identical response streams
/// regardless of worker count or cache state (DESIGN.md "Serving").
///
/// Requests:
///   {"id":"q1","params":[256,8,0.1],"scales":[64,256]}   predict (default)
///   {"id":"q2","model":"tenant-a","params":[256,8]}       predict, named tenant
///   {"cmd":"ping"}                                        liveness probe
///   {"cmd":"health"}                                      readiness probe
///   {"cmd":"reload"} / {"cmd":"reload","model":"m.txt"}   hot model reload
///   {"cmd":"reload","tenant":"tenant-a"}                  registry tenant reload
///   {"cmd":"stats"}                                       hpcp-stats/1 snapshot
///   {"cmd":"trace-dump","path":"t.json"}                  live Chrome-trace dump
///   {"cmd":"ingest","model":"t","params":[256,8],
///    "nprocs":64,"runtime":12.5,"run_id":7}               append a measured run
///   {"cmd":"retrain","model":"t"}                         synchronous retrain
///   {"cmd":"shutdown"}                                    stop the server
///
/// `ingest` appends one measured run to the named tenant's run log
/// (registry mode only; `model` absent = the default tenant, `run_id`
/// optional) and acks without touching the predict path. `retrain` runs
/// the shadow-gated retrain synchronously and reports the verdict.
///
/// `id` (string or number) is echoed verbatim on the response. `params`
/// are the model's training parameter columns, in history-schema order.
/// `scales` are the process counts to predict at; omitted means the
/// model's trained target scales, and an explicitly *empty* list is a
/// protocol error. Responses carry `"ok"` plus either the payload and
/// `"model_version"`, or `"error":{"code","message"}`. Numbers are
/// rendered with the shortest round-trip decimal (obs::json_number_into),
/// never with locale- or path-dependent formatting.

namespace hpcp::serve {

/// Protocol schema marker, reported by ping/health/stats responses.
inline constexpr const char* kProtocolSchema = "hpcp-serve/1";

/// Resilience-layer error codes (beyond "bad-request"/"unknown-cmd" and
/// the ErrorCode names). Responses carrying one of these are *degraded*
/// responses: they are the server protecting itself, not a function of
/// the request alone, so the byte-identity contract exempts them.
inline constexpr const char* kErrTooLarge = "too-large";      ///< line > --max-line-bytes
inline constexpr const char* kErrOverloaded = "overloaded";   ///< queue full, request shed
inline constexpr const char* kErrDegraded = "degraded";       ///< cache-only mode, miss rejected
inline constexpr const char* kErrDeadline = "deadline";       ///< request deadline expired

/// Registry-mode error: the request named a tenant the registry does not
/// know (or named any tenant on a single-model server). Unlike the codes
/// above this is NOT a degraded response — it is a pure function of the
/// request and the store, so it participates in the byte-identity
/// contract like any other request-shaped error.
inline constexpr const char* kErrUnknownModel = "unknown-model";

/// One parsed request line.
struct Request {
  enum class Cmd {
    kPredict,
    kPing,
    kHealth,
    kReload,
    kStats,
    kTraceDump,
    kIngest,
    kRetrain,
    kShutdown
  };

  Cmd cmd = Cmd::kPredict;
  /// The client's `id`, already rendered as a JSON token ("\"q1\"" or
  /// "17"); empty when the request carried none. Echoed on responses.
  std::string id_json;
  std::vector<double> params;       ///< predict only
  std::vector<std::size_t> scales;  ///< predict only; empty = model targets
  /// reload: the archive to load (empty = original path). trace-dump: the
  /// output file for the Chrome-trace snapshot (required).
  std::string model_path;
  /// predict: the `model` field — which registry tenant to serve from
  /// (empty = the default tenant, or the single configured model).
  /// reload: the `tenant` field — which tenant to reload (registry mode;
  /// empty = the single model / every resident tenant per server policy).
  /// ingest / retrain: the `model` field — which tenant's run log.
  std::string tenant;
  /// ingest only: the measured run (process count, wall-clock seconds,
  /// optional site-assigned run id). `runtime` passes the protocol layer
  /// whenever it is a finite number — semantically bad measurements (zero,
  /// negative) are the quarantine layer's call, not the parser's.
  std::size_t nprocs = 0;
  double runtime = 0.0;
  std::uint64_t run_id = 0;
};

/// A protocol-level failure, rendered as the response's `error` object.
/// Codes: "bad-request" (malformed JSON or fields), "unknown-cmd", and the
/// ErrorCode names ("io", "bad-data", …) for model-side failures.
struct ErrorInfo {
  std::string code;
  std::string message;
  /// Retry-After hint in milliseconds, rendered as "retry_after_ms" inside
  /// the error object when non-zero (overloaded / degraded responses).
  std::uint64_t retry_after_ms = 0;
};

/// Parses one request line. On success fills `out` and returns true; on a
/// protocol violation fills `err` and returns false. Never throws on
/// malformed input — garbage lines are expected at this trust boundary.
[[nodiscard]] bool parse_request(const std::string& line, Request* out,
                                 ErrorInfo* err);

/// Success response for a predict request:
/// {"id":…,"ok":true,"model_version":V,"scales":[…],"predictions":[…]}
[[nodiscard]] std::string render_predictions(
    const std::string& id_json, std::uint64_t model_version,
    const std::vector<std::size_t>& scales,
    const std::vector<double>& predictions);

/// Error response: {"id":…,"ok":false,"model_version":V,"error":{…}}.
[[nodiscard]] std::string render_error(const std::string& id_json,
                                       std::uint64_t model_version,
                                       const ErrorInfo& err);

}  // namespace hpcp::serve
