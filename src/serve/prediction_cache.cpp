#include "src/serve/prediction_cache.hpp"

#include <algorithm>
#include <cstring>

namespace hpcp::serve {

namespace {

/// FNV-1a over raw bytes: stable across platforms and fast enough for a
/// per-request key. Only used for shard selection — correctness rests on
/// the exact key comparison in the shard's index.
std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

PredictionCache::PredictionCache(std::size_t max_entries,
                                 std::size_t num_shards)
    : max_entries_(max_entries) {
  if (max_entries_ == 0) return;
  num_shards = std::clamp<std::size_t>(num_shards, 1, max_entries_);
  shards_.reserve(num_shards);
  // Distribute capacity so the shard totals sum to exactly max_entries.
  const std::size_t base = max_entries_ / num_shards;
  const std::size_t extra = max_entries_ % num_shards;
  for (std::size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = base + (i < extra ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

std::string PredictionCache::make_key(std::string_view tenant,
                                      std::uint64_t model_version,
                                      std::span<const double> params,
                                      std::size_t scale) {
  // Fixed-width fields (version, scale, params count) first, then the
  // params block, then the tenant bytes as the remainder. The explicit
  // params count is what makes the layout injective: params and tenant
  // are both variable-width, so without it a tenant whose bytes spell an
  // extra double would alias a params vector one element longer.
  const std::size_t nparams = params.size();
  std::string key(sizeof(model_version) + sizeof(scale) + sizeof(nparams) +
                      params.size_bytes() + tenant.size(),
                  '\0');
  char* p = key.data();
  std::memcpy(p, &model_version, sizeof(model_version));
  p += sizeof(model_version);
  std::memcpy(p, &scale, sizeof(scale));
  p += sizeof(scale);
  std::memcpy(p, &nparams, sizeof(nparams));
  p += sizeof(nparams);
  if (!params.empty()) {
    std::memcpy(p, params.data(), params.size_bytes());
    p += params.size_bytes();
  }
  if (!tenant.empty()) std::memcpy(p, tenant.data(), tenant.size());
  return key;
}

PredictionCache::Shard& PredictionCache::shard_for(const std::string& key) {
  return *shards_[fnv1a(key) % shards_.size()];
}

std::optional<double> PredictionCache::lookup(std::string_view tenant,
                                              std::uint64_t model_version,
                                              std::span<const double> params,
                                              std::size_t scale) {
  if (!enabled()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const std::string key = make_key(tenant, model_version, params, scale);
  Shard& shard = shard_for(key);
  const std::lock_guard lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->value;
}

void PredictionCache::insert(std::string_view tenant,
                             std::uint64_t model_version,
                             std::span<const double> params,
                             std::size_t scale, double value) {
  if (!enabled()) return;
  std::string key = make_key(tenant, model_version, params, scale);
  Shard& shard = shard_for(key);
  const std::lock_guard lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->value = value;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  while (shard.lru.size() >= shard.capacity && !shard.lru.empty()) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
  }
  shard.lru.push_front(Entry{key, value});
  shard.index.emplace(std::move(key), shard.lru.begin());
}

void PredictionCache::clear() {
  for (const auto& shard : shards_) {
    const std::lock_guard lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
  }
}

std::size_t PredictionCache::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard lock(shard->mutex);
    n += shard->lru.size();
  }
  return n;
}

}  // namespace hpcp::serve
