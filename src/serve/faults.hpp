#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <streambuf>
#include <string>

#include "src/common/error.hpp"

/// \file faults.hpp (serve)
/// Deterministic fault injection for the serving path.
///
/// A long-lived prediction daemon dies from the inputs nobody replays in
/// tests: a client that vanishes mid-line, a socket that delivers one byte
/// per read, a model archive torn by a crashed writer, a clock that jumps
/// past every deadline. This header gives those failures a seed. A
/// FaultSpec (parsed from the HPCP_SERVE_FAULTS environment variable or
/// built directly by tests) drives a FaultInjector whose decisions come
/// from a splitmix64 stream, so every chaos scenario is a pure function of
/// its seed — a crash found in CI replays locally from the seed alone.
///
/// Injection sites:
///   - ChaosStreambuf wraps any input streambuf and injects short reads,
///     garbage frames (whole bogus lines at line boundaries), and a
///     mid-line disconnect (premature EOF at an arbitrary byte).
///   - FdStreambuf (fd_stream.hpp) consults an injector to clamp socket
///     reads/writes and force disconnects at the syscall layer.
///   - make_skipping_clock builds a deterministic monotonic clock that
///     occasionally jumps forward, for exercising request deadlines
///     without wall-time dependence.
///
/// Everything here is off unless explicitly enabled; production builds
/// pay one null-pointer check per site.

namespace hpcp::serve {

/// Probabilities and magnitudes of the injected faults. All probabilities
/// are per decision point (one read, one line, one clock read) in [0, 1].
struct FaultSpec {
  std::uint64_t seed = 1;
  double short_read = 0.0;   ///< read delivers a 1..8-byte sliver
  double disconnect = 0.0;   ///< input ends mid-line, permanently
  double garbage = 0.0;      ///< a garbage frame precedes the next line
  double tenant = 0.0;       ///< a well-formed predict line naming a random
                             ///< tenant precedes the next line (registry
                             ///< routing chaos: known, unknown, and
                             ///< hostile "model" values)
  double ingest = 0.0;       ///< a well-formed ingest line precedes the next
                             ///< line (continuous-learning chaos: known and
                             ///< unknown tenants, clean and semantically
                             ///< poisoned measurements — the quarantine
                             ///< layer's diet, never a crash)
  double short_write = 0.0;  ///< write accepts only a sliver (fd layer)
  double write_error = 0.0;  ///< write fails outright, EPIPE-style
  double clock_skip = 0.0;   ///< clock read jumps forward clock_skip_ms
  std::uint64_t clock_skip_ms = 1000;

  [[nodiscard]] bool enabled() const noexcept {
    return short_read > 0.0 || disconnect > 0.0 || garbage > 0.0 ||
           tenant > 0.0 || ingest > 0.0 || short_write > 0.0 ||
           write_error > 0.0 || clock_skip > 0.0;
  }
};

/// Parses a spec string like
///   "seed=42,short_read=0.2,disconnect=0.05,garbage=0.1,clock_skip=0.01"
/// (keys as in FaultSpec; unknown keys, bad numbers, or out-of-range
/// probabilities are BadData errors so a typoed HPCP_SERVE_FAULTS cannot
/// silently disable a chaos run).
[[nodiscard]] Expected<FaultSpec> parse_fault_spec(const std::string& text);

/// The seeded decision stream. Each call site draws in a fixed order, so
/// for one transport + request stream the fault sequence is reproducible.
class FaultInjector {
 public:
  FaultInjector() = default;  ///< disabled: every roll says "no fault"
  explicit FaultInjector(const FaultSpec& spec)
      : spec_(spec), state_(spec.seed * 0x9e3779b97f4a7c15ULL + 1) {}

  [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] bool enabled() const noexcept { return spec_.enabled(); }

  /// True with probability `p`; always advances the stream when enabled.
  [[nodiscard]] bool roll(double p) noexcept;
  /// Uniform draw in [0, n); n == 0 returns 0.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t n) noexcept;

  /// Site helpers, shared by both transports so fault behaviour matches.
  [[nodiscard]] std::size_t clamp_read(std::size_t got) noexcept;
  [[nodiscard]] bool read_disconnects() noexcept {
    return roll(spec_.disconnect);
  }
  [[nodiscard]] std::size_t clamp_write(std::size_t want) noexcept;
  [[nodiscard]] bool write_fails() noexcept {
    return roll(spec_.write_error);
  }

 private:
  FaultSpec spec_{};
  std::uint64_t state_ = 0;
};

/// Process-wide injector parsed from HPCP_SERVE_FAULTS, or nullptr when
/// the variable is unset/disabled. A malformed spec is reported on stderr
/// once and treated as a hard error by callers that opt in (the CLI);
/// here it just yields nullptr.
[[nodiscard]] FaultInjector* process_faults();

/// A deterministic monotonic clock for deadline tests: starts at
/// `start_ms`, advances 1ms per read, and jumps forward by
/// spec.clock_skip_ms with probability spec.clock_skip per read. The
/// injector must outlive the returned function.
[[nodiscard]] std::function<std::uint64_t()> make_skipping_clock(
    FaultInjector* injector, std::uint64_t start_ms = 0);

/// An input streambuf that forwards another streambuf's bytes through the
/// fault model: short reads deliver slivers, garbage frames are injected
/// as whole extra lines at line boundaries (so adjacent real requests stay
/// intact and accounting per line is exact), and a disconnect cuts the
/// stream mid-line and pins it at EOF. With a disabled injector it is a
/// transparent pass-through.
class ChaosStreambuf final : public std::streambuf {
 public:
  ChaosStreambuf(std::streambuf* source, FaultInjector* injector);

  /// True once an injected disconnect ended the stream early.
  [[nodiscard]] bool disconnected() const noexcept { return disconnected_; }
  /// Number of garbage frames injected so far.
  [[nodiscard]] std::size_t garbage_frames() const noexcept {
    return garbage_frames_;
  }
  /// Number of injected tenant-routing predict frames so far.
  [[nodiscard]] std::size_t tenant_frames() const noexcept {
    return tenant_frames_;
  }
  /// Number of injected ingest frames so far.
  [[nodiscard]] std::size_t ingest_frames() const noexcept {
    return ingest_frames_;
  }

 protected:
  int_type underflow() override;

 private:
  std::streambuf* source_;
  FaultInjector* injector_;
  bool disconnected_ = false;
  bool at_line_start_ = true;
  std::size_t garbage_frames_ = 0;
  std::size_t tenant_frames_ = 0;
  std::size_t ingest_frames_ = 0;
  std::string pending_;  ///< queued garbage frame bytes, delivered first
  char buf_[4096];
};

}  // namespace hpcp::serve
