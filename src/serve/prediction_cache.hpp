#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

/// \file prediction_cache.hpp (serve)
/// Sharded LRU cache for served predictions, keyed by (feature vector,
/// scale). A key's shard is chosen by a 64-bit FNV-1a hash of the raw key
/// bytes; within a shard an exact byte-wise key lookup guards against hash
/// collisions — a collision may cost a miss, never a wrong answer.
///
/// Caching is value-transparent by construction: the stored value is the
/// exact double the batched prediction path produced, and per-row
/// predictions are independent of batch composition, so a hit replays the
/// byte-identical response a recomputation would have produced (the serve
/// determinism contract, tested in tests/serve/).
///
/// Thread safety: one mutex per shard; hit/miss counters are lock-free
/// atomics. The server inserts serially (in request order) so eviction
/// order is deterministic, but the cache itself is safe under any
/// interleaving.

namespace hpcp::serve {

class PredictionCache {
 public:
  /// `max_entries` == 0 disables the cache entirely (lookups miss, inserts
  /// drop). The shard count is clamped so each shard holds at least one
  /// entry and the total never exceeds `max_entries`.
  explicit PredictionCache(std::size_t max_entries,
                           std::size_t num_shards = 8);

  [[nodiscard]] bool enabled() const noexcept { return max_entries_ > 0; }
  [[nodiscard]] std::size_t max_entries() const noexcept {
    return max_entries_;
  }
  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shards_.size();
  }

  /// The cached prediction for (params, scale), refreshing its LRU
  /// position; nullopt on a miss. Counts a hit or a miss.
  [[nodiscard]] std::optional<double> lookup(std::span<const double> params,
                                             std::size_t scale);

  /// Stores the prediction for (params, scale), evicting the shard's
  /// least-recently-used entry when full. Overwrites an existing entry
  /// (predictions are deterministic, so the value cannot actually change
  /// for a fixed model; reloads clear() instead of relying on overwrite).
  void insert(std::span<const double> params, std::size_t scale,
              double value);

  /// Drops every entry (model hot-reload invalidates all cached values).
  /// Hit/miss counters are cumulative and survive clears.
  void clear();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::string key;  ///< raw bytes of (params, scale)
    double value = 0.0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    std::size_t capacity = 0;
  };

  [[nodiscard]] static std::string make_key(std::span<const double> params,
                                            std::size_t scale);
  [[nodiscard]] Shard& shard_for(const std::string& key);

  std::size_t max_entries_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace hpcp::serve
