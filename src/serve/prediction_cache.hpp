#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

/// \file prediction_cache.hpp (serve)
/// Sharded LRU cache for served predictions, keyed by (tenant,
/// model_version, feature vector, scale). A key's shard is chosen by a
/// 64-bit FNV-1a hash of the raw key bytes; within a shard an exact
/// byte-wise key lookup guards against hash collisions — a collision may
/// cost a miss, never a wrong answer.
///
/// Tenant id and model version are part of the key *by construction*, not
/// by convention: a reload (version bump) or a tenant switch can never
/// serve a stale hit even if nobody remembers to clear() — the old
/// entries simply stop matching and age out of the LRU. The single-model
/// server still clears on install (keeping its hit/miss accounting
/// byte-stable), but correctness no longer depends on it; the multi-tenant
/// registry path relies on the keyed isolation alone, so one tenant's
/// reload does not flush every other tenant's working set.
///
/// Caching is value-transparent by construction: the stored value is the
/// exact double the batched prediction path produced, and per-row
/// predictions are independent of batch composition, so a hit replays the
/// byte-identical response a recomputation would have produced (the serve
/// determinism contract, tested in tests/serve/).
///
/// Thread safety: one mutex per shard; hit/miss counters are lock-free
/// atomics. The server inserts serially (in request order) so eviction
/// order is deterministic, but the cache itself is safe under any
/// interleaving.

namespace hpcp::serve {

class PredictionCache {
 public:
  /// `max_entries` == 0 disables the cache entirely (lookups miss, inserts
  /// drop). The shard count is clamped so each shard holds at least one
  /// entry and the total never exceeds `max_entries`.
  explicit PredictionCache(std::size_t max_entries,
                           std::size_t num_shards = 8);

  [[nodiscard]] bool enabled() const noexcept { return max_entries_ > 0; }
  [[nodiscard]] std::size_t max_entries() const noexcept {
    return max_entries_;
  }
  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shards_.size();
  }

  /// The cached prediction for (tenant, version, params, scale),
  /// refreshing its LRU position; nullopt on a miss. Counts a hit or a
  /// miss. `tenant` is "" for the single-model server.
  [[nodiscard]] std::optional<double> lookup(std::string_view tenant,
                                             std::uint64_t model_version,
                                             std::span<const double> params,
                                             std::size_t scale);

  /// Stores the prediction, evicting the shard's least-recently-used
  /// entry when full. Overwrites an existing entry (predictions are
  /// deterministic for a fixed (tenant, version), so the value cannot
  /// actually change; version is in the key, so a reload invalidates by
  /// mismatch, never by overwrite).
  void insert(std::string_view tenant, std::uint64_t model_version,
              std::span<const double> params, std::size_t scale,
              double value);

  /// Drops every entry (model hot-reload invalidates all cached values).
  /// Hit/miss counters are cumulative and survive clears.
  void clear();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::string key;  ///< bytes of (version, scale, nparams, params, tenant)
    double value = 0.0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    std::size_t capacity = 0;
  };

  [[nodiscard]] static std::string make_key(std::string_view tenant,
                                            std::uint64_t model_version,
                                            std::span<const double> params,
                                            std::size_t scale);
  [[nodiscard]] Shard& shard_for(const std::string& key);

  std::size_t max_entries_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace hpcp::serve
