#pragma once

#include <array>
#include <cstddef>

/// \file proc_grid.hpp
/// Process-grid factorisations used by domain-decomposed applications.

namespace hpcp {

/// Factorise p into px ≥ py with px·py = p, as square as possible
/// (MPI_Dims_create-style).
[[nodiscard]] std::array<std::size_t, 2> factorize_2d(std::size_t p);

/// Factorise p into px ≥ py ≥ pz with px·py·pz = p, as cubic as possible —
/// minimises the surface-to-volume ratio of a block decomposition.
[[nodiscard]] std::array<std::size_t, 3> factorize_3d(std::size_t p);

}  // namespace hpcp
