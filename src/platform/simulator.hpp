#pragma once

#include <cstdint>
#include <span>

#include "src/platform/application.hpp"
#include "src/platform/machine.hpp"
#include "src/platform/workload.hpp"

/// \file simulator.hpp
/// Executes workload traces against the machine model, producing runtimes.
///
/// Two layers:
///  * `trace_time` — the deterministic analytical time: per-phase roofline /
///    collective costs, a load-imbalance inflation on compute phases that
///    grows with √(2·ln p) (the expected maximum of p i.i.d. per-process
///    jitters), and job startup overhead.
///  * `measure` — one simulated *measurement*: the deterministic time under
///    multiplicative log-normal run-to-run noise, seeded from
///    (app, params, nprocs, run_id) so the whole experimental record is
///    reproducible bit-for-bit.

namespace hpcp {

class PlatformSimulator {
 public:
  /// Default: the reference machine model.
  PlatformSimulator() : PlatformSimulator(MachineModel{}) {}

  explicit PlatformSimulator(MachineModel machine,
                             std::uint64_t noise_seed = 0x5eed);

  [[nodiscard]] const MachineModel& machine() const noexcept {
    return machine_;
  }

  /// Deterministic cost of one phase at p processes (repetitions included).
  [[nodiscard]] double phase_time(const Phase& phase,
                                  std::size_t nprocs) const;

  /// Deterministic cost of a full trace at p processes, including startup.
  [[nodiscard]] double trace_time(const WorkloadTrace& trace,
                                  std::size_t nprocs) const;

  /// Noise-free runtime of an application run.
  [[nodiscard]] double true_time(const Application& app,
                                 std::span<const double> params,
                                 std::size_t nprocs) const;

  /// One simulated measurement; deterministic per (app, params, nprocs,
  /// run_id, noise_seed). Distinct run_ids give independent noise draws.
  [[nodiscard]] double measure(const Application& app,
                               std::span<const double> params,
                               std::size_t nprocs,
                               std::uint64_t run_id = 0) const;

  /// Load-imbalance inflation applied to compute phases: the expected
  /// max/mean of p processes with coefficient of variation cv.
  [[nodiscard]] static double imbalance_factor(std::size_t nprocs, double cv);

 private:
  MachineModel machine_;
  std::uint64_t noise_seed_;
};

}  // namespace hpcp
