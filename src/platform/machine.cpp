#include "src/platform/machine.hpp"

#include <cmath>

#include "src/common/check.hpp"

namespace hpcp {

std::size_t MachineModel::nodes_for(std::size_t nprocs) const {
  HPCP_REQUIRE(nprocs >= 1, "job needs at least one process");
  return (nprocs + cores_per_node - 1) / cores_per_node;
}

bool MachineModel::single_node(std::size_t nprocs) const {
  return nodes_for(nprocs) == 1;
}

double MachineModel::alpha(std::size_t nprocs) const {
  return single_node(nprocs) ? intra_latency : inter_latency;
}

double MachineModel::beta(std::size_t nprocs) const {
  return 1.0 / (single_node(nprocs) ? intra_bandwidth : inter_bandwidth);
}

double MachineModel::startup_time(std::size_t nprocs) const {
  return startup_base +
         startup_per_log_p * std::log2(static_cast<double>(nprocs) + 1.0);
}

double MachineModel::effective_bandwidth(double working_set_bytes) const {
  HPCP_REQUIRE(working_set_bytes >= 0.0, "working set must be non-negative");
  if (working_set_bytes <= 0.0 || cache_per_core <= 0.0) {
    return mem_bandwidth;
  }
  const double ratio = working_set_bytes / cache_per_core;
  if (ratio <= 0.5) return mem_bandwidth * cache_bandwidth_factor;
  if (ratio >= 2.0) return mem_bandwidth;
  // Geometric interpolation over the transition band [0.5, 2.0]:
  // t goes 1 -> 0 as the working set grows past the cache.
  const double t = std::log2(2.0 / ratio) / 2.0;
  return mem_bandwidth * std::pow(cache_bandwidth_factor, t);
}

MachineModel reference_machine() { return MachineModel{}; }

}  // namespace hpcp
