#include "src/platform/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/platform/collectives.hpp"

namespace hpcp {

PlatformSimulator::PlatformSimulator(MachineModel machine,
                                     std::uint64_t noise_seed)
    : machine_(std::move(machine)), noise_seed_(noise_seed) {}

double PlatformSimulator::imbalance_factor(std::size_t nprocs, double cv) {
  if (nprocs <= 1 || cv <= 0.0) return 1.0;
  // Expected maximum of p i.i.d. draws with mean 1 and std cv is
  // approximately 1 + cv·√(2·ln p) (Gaussian extreme-value bound); the whole
  // step waits for the slowest process.
  return 1.0 + cv * std::sqrt(2.0 * std::log(static_cast<double>(nprocs)));
}

double PlatformSimulator::phase_time(const Phase& phase,
                                     std::size_t nprocs) const {
  HPCP_REQUIRE(nprocs >= 1, "process count must be positive");
  // Collectives run over a sub-communicator when comm_size is set, but the
  // link parameters (intra- vs inter-node) are still those of the whole job:
  // a row of a 2-D process grid generally spans nodes whenever the job does.
  const std::size_t comm =
      phase.comm_size == 0 ? nprocs
                           : std::min(phase.comm_size, nprocs);
  MachineModel scoped = machine_;
  if (!machine_.single_node(nprocs)) {
    scoped.intra_latency = machine_.inter_latency;
    scoped.intra_bandwidth = machine_.inter_bandwidth;
  }
  double once = 0.0;
  switch (phase.type) {
    case PhaseType::kCompute: {
      const double flop_time = phase.flops / machine_.core_flops;
      const double mem_time =
          phase.bytes / machine_.effective_bandwidth(phase.working_set);
      once = std::max(flop_time, mem_time) *
             imbalance_factor(nprocs, machine_.jitter_cv);
      break;
    }
    case PhaseType::kSerial:
      // One process computes while the rest wait: no parallel speedup and
      // no imbalance inflation (there is nothing to balance).
      once = phase.flops / machine_.core_flops;
      break;
    case PhaseType::kNeighbor:
      once = neighbor_exchange_time(machine_, nprocs, phase.bytes,
                                    phase.neighbors);
      break;
    case PhaseType::kAllreduce:
      once = allreduce_time(scoped, comm, phase.bytes);
      break;
    case PhaseType::kBroadcast:
      once = broadcast_time(scoped, comm, phase.bytes);
      break;
    case PhaseType::kAllToAll:
      once = alltoall_time(scoped, comm, phase.bytes);
      break;
    case PhaseType::kBarrier:
      once = barrier_time(machine_, nprocs);
      break;
  }
  return once * phase.repetitions;
}

double PlatformSimulator::trace_time(const WorkloadTrace& trace,
                                     std::size_t nprocs) const {
  double total = machine_.startup_time(nprocs);
  for (const auto& phase : trace) total += phase_time(phase, nprocs);
  return total;
}

double PlatformSimulator::true_time(const Application& app,
                                    std::span<const double> params,
                                    std::size_t nprocs) const {
  return trace_time(app.trace(params, nprocs), nprocs);
}

double PlatformSimulator::measure(const Application& app,
                                  std::span<const double> params,
                                  std::size_t nprocs,
                                  std::uint64_t run_id) const {
  const double base = true_time(app, params, nprocs);
  // Seed the noise stream from everything that identifies the run, so the
  // same run always yields the same measurement and different runs are
  // independent.
  std::uint64_t h = noise_seed_;
  for (const char c : app.name()) {
    h ^= static_cast<std::uint64_t>(c);
    (void)splitmix64(h);
  }
  for (const double v : params) {
    h ^= std::bit_cast<std::uint64_t>(v);
    (void)splitmix64(h);
  }
  h ^= nprocs;
  (void)splitmix64(h);
  h ^= run_id;
  Rng rng(splitmix64(h));
  return rng.lognormal_median(base, machine_.noise_sigma);
}

}  // namespace hpcp
