#include "src/platform/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>
#include <vector>

#include "src/common/check.hpp"

namespace hpcp {

FaultSpec FaultSpec::uniform(double rate) {
  HPCP_REQUIRE(rate >= 0.0 && rate <= 1.0, "corruption rate must be in [0,1]");
  FaultSpec spec;
  // Seven fault kinds share the budget; perturbation gets a double share
  // because it is by far the most common real-world damage (unit mixups).
  const double share = rate / 8.0;
  spec.drop_rate = share;
  spec.nan_runtime_rate = share;
  spec.negative_runtime_rate = share;
  spec.zero_runtime_rate = share;
  spec.perturb_rate = 2.0 * share;
  spec.duplicate_run_id_rate = share;
  spec.zero_procs_rate = share;
  return spec;
}

HistoryStore inject_faults(const HistoryStore& history, const FaultSpec& spec,
                           Rng& rng, FaultSummary* summary) {
  FaultSummary local;
  HistoryStore out(history.app_name(), history.param_names());
  const auto& records = history.records();
  for (std::size_t i = 0; i < records.size(); ++i) {
    ExecutionRecord rec = records[i];
    // One roll decides the record's fate; thresholds stack so each record
    // suffers at most one fault and rates stay independent of order.
    const double roll = rng.uniform();
    double acc = spec.drop_rate;
    if (roll < acc) {
      ++local.dropped;
      continue;
    }
    if (roll < (acc += spec.nan_runtime_rate)) {
      rec.runtime = std::numeric_limits<double>::quiet_NaN();
      ++local.nan_runtime;
    } else if (roll < (acc += spec.negative_runtime_rate)) {
      rec.runtime = -rec.runtime;
      ++local.negative_runtime;
    } else if (roll < (acc += spec.zero_runtime_rate)) {
      rec.runtime = 0.0;
      ++local.zero_runtime;
    } else if (roll < (acc += spec.perturb_rate)) {
      rec.runtime *= std::exp(rng.normal(0.0, spec.perturb_sigma));
      ++local.perturbed;
    } else if (roll < (acc += spec.duplicate_run_id_rate) && i > 0) {
      rec.run_id =
          records[static_cast<std::size_t>(rng.uniform_index(i))].run_id;
      ++local.duplicated_run_id;
    } else if (roll < (acc += spec.zero_procs_rate)) {
      rec.nprocs = 0;
      ++local.zero_procs;
    }
    out.append_unchecked(std::move(rec));
  }
  if (summary != nullptr) *summary = local;
  return out;
}

std::string corrupt_csv_text(const std::string& text, const CsvFaultSpec& spec,
                             Rng& rng) {
  HPCP_REQUIRE(spec.keep_fraction >= 0.0 && spec.keep_fraction <= 1.0,
               "keep_fraction must be in [0,1]");
  // Split into lines, keeping the structure editable.
  std::vector<std::string> lines;
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) lines.push_back(std::move(line));

  if (spec.shuffle_columns && !lines.empty()) {
    const auto header = csv_split_line(lines[0]);
    std::vector<std::size_t> perm(header.size());
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    rng.shuffle(perm);
    for (auto& l : lines) {
      const auto fields = csv_split_line(l);
      if (fields.size() != perm.size()) continue;
      std::vector<std::string> shuffled(fields.size());
      for (std::size_t c = 0; c < perm.size(); ++c) {
        shuffled[c] = fields[perm[c]];
      }
      l = csv_join(shuffled);
    }
  }

  for (std::size_t r = 1; r < lines.size(); ++r) {
    if (spec.ragged_row_rate > 0.0 && rng.uniform() < spec.ragged_row_rate) {
      const auto cut = lines[r].find_last_of(',');
      if (cut != std::string::npos) lines[r].resize(cut);
    }
    if (spec.garbage_field_rate > 0.0 &&
        rng.uniform() < spec.garbage_field_rate) {
      auto fields = csv_split_line(lines[r]);
      if (!fields.empty()) {
        fields[static_cast<std::size_t>(rng.uniform_index(fields.size()))] =
            "???";
        lines[r] = csv_join(fields);
      }
    }
  }

  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  if (spec.keep_fraction < 1.0) {
    out.resize(static_cast<std::size_t>(
        static_cast<double>(out.size()) * spec.keep_fraction));
  }
  return out;
}

}  // namespace hpcp
