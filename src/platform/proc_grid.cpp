#include "src/platform/proc_grid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.hpp"

namespace hpcp {

std::array<std::size_t, 2> factorize_2d(std::size_t p) {
  HPCP_REQUIRE(p >= 1, "process count must be positive");
  // Largest divisor <= sqrt(p) gives the most square grid.
  std::size_t best = 1;
  for (std::size_t d = 1; d * d <= p; ++d) {
    if (p % d == 0) best = d;
  }
  return {p / best, best};
}

std::array<std::size_t, 3> factorize_3d(std::size_t p) {
  HPCP_REQUIRE(p >= 1, "process count must be positive");
  // Enumerate divisor pairs; pick the triple minimising the block "surface"
  // (sum of pairwise products), i.e. the most cubic decomposition.
  std::array<std::size_t, 3> best{p, 1, 1};
  double best_surface = std::numeric_limits<double>::infinity();
  for (std::size_t a = 1; a * a * a <= p; ++a) {
    if (p % a != 0) continue;
    const std::size_t rest = p / a;
    for (std::size_t b = a; b * b <= rest; ++b) {
      if (rest % b != 0) continue;
      const std::size_t c = rest / b;
      const double surface = static_cast<double>(a * b) +
                             static_cast<double>(b * c) +
                             static_cast<double>(a * c);
      if (surface < best_surface) {
        best_surface = surface;
        best = {c, b, a};  // descending
      }
    }
  }
  std::sort(best.begin(), best.end(), std::greater<>());
  return best;
}

}  // namespace hpcp
