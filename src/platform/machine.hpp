#pragma once

#include <cstddef>
#include <string>

/// \file machine.hpp
/// Analytical machine model of the simulated HPC platform.
///
/// The paper ran its two applications on a real cluster; this library
/// substitutes a parameterised machine model (see DESIGN.md). The model is
/// deliberately conventional: per-core roofline (flop rate vs memory
/// bandwidth), an α–β (latency–bandwidth) network with distinct intra-node
/// and inter-node parameters, and log-normal run-to-run noise. Those
/// ingredients reproduce the curve families real applications exhibit —
/// near-linear compute scaling, communication terms growing with log p or
/// with surface/volume ratios, and a kink where jobs spill past one node.

namespace hpcp {

struct MachineModel {
  std::string name = "sim-cluster";

  // --- per-core execution ---
  double core_flops = 8.0e9;       ///< sustained flop/s per core
  double mem_bandwidth = 1.0e10;   ///< sustained bytes/s per core (stream)
  /// Last-level cache capacity available to one core. Memory-bound phases
  /// whose per-process working set fits here stream from cache instead of
  /// DRAM — the regime switch that gives real applications superlinear
  /// speedup regions and breaks naive log-linear performance models.
  double cache_per_core = 4.0e6;
  /// Effective bandwidth multiplier once the working set is cache-resident.
  double cache_bandwidth_factor = 3.0;

  // --- topology ---
  std::size_t cores_per_node = 16;

  // --- interconnect (α–β model) ---
  double inter_latency = 1.8e-6;      ///< seconds per inter-node message
  double inter_bandwidth = 6.0e9;     ///< bytes/s per inter-node link
  double intra_latency = 4.0e-7;      ///< seconds per intra-node message
  double intra_bandwidth = 2.4e10;    ///< bytes/s within a node

  // --- noise ---
  double noise_sigma = 0.03;   ///< σ of log-normal run-to-run noise
  double jitter_cv = 0.015;    ///< per-process compute jitter (coeff. of var.)
  /// Residual per-run overhead inside the timed region (application setup,
  /// first-touch, warm-up) — launch/MPI_Init costs are *not* part of the
  /// timed region, as in standard benchmarking practice.
  double startup_base = 0.05;
  double startup_per_log_p = 0.01;  ///< extra overhead per doubling

  /// Number of nodes a p-process job occupies (one process per core).
  [[nodiscard]] std::size_t nodes_for(std::size_t nprocs) const;

  /// True when every process of a p-process job fits on one node.
  [[nodiscard]] bool single_node(std::size_t nprocs) const;

  /// Effective α (message latency) for a p-process job.
  [[nodiscard]] double alpha(std::size_t nprocs) const;

  /// Effective β (seconds per byte) for a p-process job.
  [[nodiscard]] double beta(std::size_t nprocs) const;

  /// Job startup overhead at p processes.
  [[nodiscard]] double startup_time(std::size_t nprocs) const;

  /// Effective streaming bandwidth for a phase with the given per-process
  /// working set: mem_bandwidth × cache_bandwidth_factor when the set is
  /// cache-resident, mem_bandwidth when it clearly is not, geometrically
  /// interpolated across the transition (working set within 0.5–2× of the
  /// cache). A working set of 0 means "not modelled" -> DRAM bandwidth.
  [[nodiscard]] double effective_bandwidth(double working_set_bytes) const;
};

/// A machine model resembling a mid-size 2020 Infiniband cluster; all
/// experiments use this unless they construct their own.
[[nodiscard]] MachineModel reference_machine();

}  // namespace hpcp
