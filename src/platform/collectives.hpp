#pragma once

#include <cstddef>

#include "src/platform/machine.hpp"

/// \file collectives.hpp
/// Cost models for MPI-style communication operations on the simulated
/// platform, in the classical α–β(–γ) framework:
///   point-to-point:  α + n·β
///   broadcast:       ⌈log₂p⌉·(α + n·β)                (binomial tree)
///   allreduce:       2⌈log₂p⌉·α + 2·((p−1)/p)·n·β + n·γ  (Rabenseifner)
///   alltoall:        (p−1)·(α + (n/p)·β)               (pairwise exchange)
///   barrier:         ⌈log₂p⌉·α                          (dissemination)
/// where n is the payload in bytes and γ the per-byte reduction cost.
/// All functions return 0 communication cost for p == 1.

namespace hpcp {

/// One message of `bytes` between two processes.
[[nodiscard]] double ptp_time(const MachineModel& m, std::size_t nprocs,
                              double bytes);

/// Simultaneous nearest-neighbour exchange (e.g. halo exchange): each
/// process sends/receives `bytes` with each of `neighbors` neighbours;
/// exchanges with distinct neighbours overlap pairwise, so cost is the
/// per-neighbour message cost times the neighbour count (send+recv
/// serialise per link).
[[nodiscard]] double neighbor_exchange_time(const MachineModel& m,
                                            std::size_t nprocs, double bytes,
                                            std::size_t neighbors);

[[nodiscard]] double broadcast_time(const MachineModel& m, std::size_t nprocs,
                                    double bytes);

[[nodiscard]] double allreduce_time(const MachineModel& m, std::size_t nprocs,
                                    double bytes);

[[nodiscard]] double alltoall_time(const MachineModel& m, std::size_t nprocs,
                                   double bytes);

[[nodiscard]] double barrier_time(const MachineModel& m, std::size_t nprocs);

/// ⌈log₂ p⌉ as a double (0 for p == 1).
[[nodiscard]] double ceil_log2(std::size_t p);

}  // namespace hpcp
