#include "src/platform/trace_report.hpp"

#include <algorithm>
#include <map>
#include <ostream>

#include "src/common/check.hpp"
#include "src/common/table.hpp"

namespace hpcp {

double TraceReport::communication_fraction() const {
  double comm = 0.0;
  for (const auto& b : by_type) {
    if (b.type != PhaseType::kCompute && b.type != PhaseType::kSerial) {
      comm += b.fraction;
    }
  }
  return comm;
}

TraceReport analyze_trace(const PlatformSimulator& sim,
                          const WorkloadTrace& trace, std::size_t nprocs) {
  HPCP_REQUIRE(nprocs >= 1, "process count must be positive");
  TraceReport report;
  report.nprocs = nprocs;
  report.startup_seconds = sim.machine().startup_time(nprocs);
  report.total_seconds = report.startup_seconds;

  std::map<PhaseType, double> seconds_by_type;
  for (const auto& phase : trace) {
    const double t = sim.phase_time(phase, nprocs);
    seconds_by_type[phase.type] += t;
    report.total_seconds += t;
  }
  for (const auto& [type, seconds] : seconds_by_type) {
    report.by_type.push_back(
        {type, seconds,
         report.total_seconds > 0.0 ? seconds / report.total_seconds : 0.0});
  }
  std::sort(report.by_type.begin(), report.by_type.end(),
            [](const PhaseBreakdown& a, const PhaseBreakdown& b) {
              return a.seconds > b.seconds;
            });
  return report;
}

void print_trace_report(std::ostream& out, const TraceReport& report) {
  TextTable table({"phase", "seconds", "share"});
  for (const auto& b : report.by_type) {
    table.add_row({phase_type_name(b.type), format_double(b.seconds, 4),
                   format_double(100.0 * b.fraction, 1) + " %"});
  }
  table.add_row({"(startup)", format_double(report.startup_seconds, 4),
                 format_double(100.0 * report.startup_seconds /
                                   std::max(report.total_seconds, 1e-300),
                               1) + " %"});
  table.add_row({"total", format_double(report.total_seconds, 4), "100 %"});
  table.print(out);
}

}  // namespace hpcp
