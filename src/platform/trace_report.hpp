#pragma once

#include <iosfwd>
#include <vector>

#include "src/platform/simulator.hpp"

/// \file trace_report.hpp
/// Where does the time go? Per-phase-type cost breakdown of a workload
/// trace at a given scale — the profiling view used to understand an
/// application's scaling regime (and to debug new application models).

namespace hpcp {

struct PhaseBreakdown {
  PhaseType type{};
  double seconds = 0.0;
  double fraction = 0.0;  ///< of the total runtime, including startup
};

struct TraceReport {
  std::size_t nprocs = 0;
  double total_seconds = 0.0;
  double startup_seconds = 0.0;
  /// One entry per phase type that appears, sorted by descending cost.
  std::vector<PhaseBreakdown> by_type;

  /// Fraction of the runtime spent communicating (all collective and
  /// point-to-point phases).
  [[nodiscard]] double communication_fraction() const;
};

/// Price every phase of `trace` at `nprocs` on the simulator's machine.
[[nodiscard]] TraceReport analyze_trace(const PlatformSimulator& sim,
                                        const WorkloadTrace& trace,
                                        std::size_t nprocs);

/// Render as an aligned table.
void print_trace_report(std::ostream& out, const TraceReport& report);

}  // namespace hpcp
