#pragma once

#include <cstdint>
#include <string>

#include "src/common/rng.hpp"
#include "src/platform/history.hpp"

/// \file fault_injector.hpp
/// Deterministic corruption of execution histories, for testing the
/// validation/quarantine layer and measuring how prediction accuracy
/// degrades with data quality (bench/exp_fault_tolerance).
///
/// Two levels of attack:
///   - record-level (inject_faults): the kinds of damage that survive
///     parsing — dropped records, NaN/negative/perturbed runtimes,
///     duplicated run_ids, zero process counts;
///   - text-level (corrupt_csv_text): the kinds of damage a file picks up
///     in transit — truncated bytes, shuffled columns, ragged rows,
///     garbage fields.
/// All corruption draws from common/rng, so a (history, spec, seed)
/// triple always produces the same damage.

namespace hpcp {

/// Per-record corruption probabilities. Each surviving record suffers at
/// most one fault; rates are evaluated in declaration order.
struct FaultSpec {
  double drop_rate = 0.0;              ///< record silently removed
  double nan_runtime_rate = 0.0;       ///< runtime := NaN
  double negative_runtime_rate = 0.0;  ///< runtime := −runtime
  double zero_runtime_rate = 0.0;      ///< runtime := 0 (failed run)
  /// runtime multiplied by a gross log-normal factor (unit mix-up scale).
  double perturb_rate = 0.0;
  double perturb_sigma = 3.0;  ///< log-space σ of the perturbation
  double duplicate_run_id_rate = 0.0;  ///< run_id := an earlier record's
  double zero_procs_rate = 0.0;        ///< nprocs := 0

  /// Spread a single corruption budget uniformly over the fault kinds —
  /// the one-knob "x% of this history is damaged" constructor used by the
  /// fault-tolerance experiment.
  [[nodiscard]] static FaultSpec uniform(double rate);
};

/// What the injector actually did (counts per fault kind).
struct FaultSummary {
  std::size_t dropped = 0;
  std::size_t nan_runtime = 0;
  std::size_t negative_runtime = 0;
  std::size_t zero_runtime = 0;
  std::size_t perturbed = 0;
  std::size_t duplicated_run_id = 0;
  std::size_t zero_procs = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return dropped + nan_runtime + negative_runtime + zero_runtime +
           perturbed + duplicated_run_id + zero_procs;
  }
};

/// Apply record-level corruption. Deterministic given (history, spec, rng
/// state). The result intentionally violates HistoryStore::append's
/// invariants — it is built through append_unchecked and exists to be fed
/// to validate_history.
[[nodiscard]] HistoryStore inject_faults(const HistoryStore& history,
                                         const FaultSpec& spec, Rng& rng,
                                         FaultSummary* summary = nullptr);

/// Text-level corruption of a serialized CSV.
struct CsvFaultSpec {
  /// Cut the text to this fraction of its bytes (1 = no truncation). The
  /// cut lands mid-line on purpose.
  double keep_fraction = 1.0;
  bool shuffle_columns = false;    ///< permute all columns consistently
  double ragged_row_rate = 0.0;    ///< per-row: delete the last field
  double garbage_field_rate = 0.0; ///< per-row: one field := "???"
};

/// Corrupt CSV text deterministically. The output may no longer be valid
/// CSV — that is the point; feed it to csv_read_checked/load_history_csv.
[[nodiscard]] std::string corrupt_csv_text(const std::string& text,
                                           const CsvFaultSpec& spec,
                                           Rng& rng);

}  // namespace hpcp
