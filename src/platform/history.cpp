#include "src/platform/history.hpp"

#include <algorithm>
#include <charconv>
#include <map>
#include <set>
#include <system_error>

#include "src/common/check.hpp"

namespace hpcp {

HistoryStore::HistoryStore(std::string app_name,
                           std::vector<std::string> param_names)
    : app_name_(std::move(app_name)), param_names_(std::move(param_names)) {}

void HistoryStore::append(ExecutionRecord record) {
  HPCP_REQUIRE(record.params.size() == param_names_.size(),
               "record parameter width mismatch");
  HPCP_REQUIRE(record.nprocs >= 1, "record needs a positive process count");
  HPCP_REQUIRE(record.runtime > 0.0, "record needs a positive runtime");
  records_.push_back(std::move(record));
}

void HistoryStore::append_unchecked(ExecutionRecord record) {
  HPCP_REQUIRE(record.params.size() == param_names_.size(),
               "record parameter width mismatch");
  records_.push_back(std::move(record));
}

std::vector<std::size_t> HistoryStore::scales() const {
  std::set<std::size_t> distinct;
  for (const auto& r : records_) distinct.insert(r.nprocs);
  return {distinct.begin(), distinct.end()};
}

Dataset HistoryStore::dataset_at_scale(std::size_t nprocs) const {
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].nprocs == nprocs) rows.push_back(i);
  }
  Matrix x(rows.size(), param_names_.size());
  std::vector<double> y(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = records_[rows[i]];
    x.set_row(i, r.params);
    y[i] = r.runtime;
  }
  return Dataset(param_names_, std::move(x), std::move(y));
}

CsvTable HistoryStore::to_csv() const {
  CsvTable table;
  table.header = param_names_;
  table.header.insert(table.header.end(), {"nprocs", "runtime", "run_id"});
  table.rows.reserve(records_.size());
  for (const auto& r : records_) {
    std::vector<std::string> row;
    row.reserve(param_names_.size() + 3);
    for (const double v : r.params) row.push_back(std::to_string(v));
    row.push_back(std::to_string(r.nprocs));
    row.push_back(std::to_string(r.runtime));
    row.push_back(std::to_string(r.run_id));
    table.rows.push_back(std::move(row));
  }
  return table;
}

namespace {

/// Non-throwing numeric parse of a whole (trimmed) field. Accepts the
/// nan/inf spellings std::to_string produces, so semantically bad records
/// survive ingestion for the validation layer to quarantine.
bool parse_field(const std::string& field, double& out) {
  const auto begin = field.find_first_not_of(" \t");
  if (begin == std::string::npos) return false;
  const auto end = field.find_last_not_of(" \t") + 1;
  const char* first = field.data() + begin;
  const char* last = field.data() + end;
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

bool parse_field(const std::string& field, std::uint64_t& out) {
  const auto begin = field.find_first_not_of(" \t");
  if (begin == std::string::npos) return false;
  const auto end = field.find_last_not_of(" \t") + 1;
  const char* first = field.data() + begin;
  const char* last = field.data() + end;
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

}  // namespace

Expected<HistoryLoad> load_history_csv(const std::string& app_name,
                                       const CsvTable& table) {
  if (table.header.size() < 3) {
    return Error{ErrorCode::Schema,
                 "history CSV too narrow: need at least nprocs,runtime,run_id",
                 app_name};
  }
  const std::size_t d = table.header.size() - 3;
  if (table.header[d] != "nprocs" || table.header[d + 1] != "runtime" ||
      table.header[d + 2] != "run_id") {
    return Error{ErrorCode::Schema,
                 "history CSV must end with nprocs,runtime,run_id columns",
                 app_name};
  }
  HistoryLoad load;
  load.store = HistoryStore(
      app_name,
      {table.header.begin(),
       table.header.begin() + static_cast<std::ptrdiff_t>(d)});
  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    const auto& row = table.rows[r];
    const auto bad = [&](const std::string& detail) {
      load.bad_rows.push_back({r + 1, detail});
    };
    if (row.size() != table.header.size()) {
      bad("field count " + std::to_string(row.size()) + " != header width " +
          std::to_string(table.header.size()));
      continue;
    }
    ExecutionRecord rec;
    rec.params.reserve(d);
    bool ok = true;
    for (std::size_t c = 0; c < d && ok; ++c) {
      double v = 0.0;
      ok = parse_field(row[c], v);
      if (!ok) bad("unparseable parameter '" + row[c] + "'");
      rec.params.push_back(v);
    }
    if (!ok) continue;
    std::uint64_t procs = 0;
    if (!parse_field(row[d], procs)) {
      bad("unparseable nprocs '" + row[d] + "'");
      continue;
    }
    rec.nprocs = static_cast<std::size_t>(procs);
    if (!parse_field(row[d + 1], rec.runtime)) {
      bad("unparseable runtime '" + row[d + 1] + "'");
      continue;
    }
    if (!parse_field(row[d + 2], rec.run_id)) {
      bad("unparseable run_id '" + row[d + 2] + "'");
      continue;
    }
    load.store.append_unchecked(std::move(rec));
  }
  return load;
}

HistoryStore HistoryStore::from_csv(const std::string& app_name,
                                    const CsvTable& table) {
  auto load = load_history_csv(app_name, table).value_or_throw();
  if (!load.bad_rows.empty()) {
    const auto& first = load.bad_rows.front();
    throw_error(Error{ErrorCode::BadData, first.detail,
                      "history row " + std::to_string(first.row) + " (of " +
                          std::to_string(load.bad_rows.size()) +
                          " bad row(s))"});
  }
  // Re-run the strict per-record invariants the lenient loader skips.
  HistoryStore store(app_name, load.store.param_names());
  for (auto& rec : load.store.records_) store.append(std::move(rec));
  return store;
}

ScalingTable build_scaling_table(const HistoryStore& history,
                                 const std::vector<std::size_t>& scales) {
  HPCP_REQUIRE(!scales.empty(), "need at least one scale");
  // Group runs by configuration, then by scale; average repeats.
  struct Cell {
    double sum = 0.0;
    std::size_t count = 0;
  };
  std::map<std::vector<double>, std::map<std::size_t, Cell>> grouped;
  for (const auto& r : history.records()) {
    auto& cell = grouped[r.params][r.nprocs];
    cell.sum += r.runtime;
    ++cell.count;
  }

  std::vector<const std::vector<double>*> complete;
  for (const auto& [params, by_scale] : grouped) {
    const bool has_all = std::all_of(
        scales.begin(), scales.end(),
        [&](std::size_t s) { return by_scale.count(s) > 0; });
    if (has_all) complete.push_back(&params);
  }

  ScalingTable table;
  table.param_names = history.param_names();
  table.scales = scales;
  table.configs = Matrix(complete.size(), history.param_names().size());
  table.times = Matrix(complete.size(), scales.size());
  for (std::size_t i = 0; i < complete.size(); ++i) {
    table.configs.set_row(i, *complete[i]);
    const auto& by_scale = grouped.at(*complete[i]);
    for (std::size_t s = 0; s < scales.size(); ++s) {
      const Cell& cell = by_scale.at(scales[s]);
      table.times(i, s) = cell.sum / static_cast<double>(cell.count);
    }
  }
  return table;
}

HistoryStore generate_history(const PlatformSimulator& sim,
                              const Application& app,
                              const std::vector<std::vector<double>>& configs,
                              const std::vector<std::size_t>& scales,
                              std::size_t runs_per_point,
                              std::uint64_t first_run_id) {
  HPCP_REQUIRE(runs_per_point >= 1, "need at least one run per point");
  HistoryStore store(app.name(), app.parameter_space().names());
  std::uint64_t run_id = first_run_id;
  for (const auto& config : configs) {
    for (const std::size_t p : scales) {
      for (std::size_t rep = 0; rep < runs_per_point; ++rep) {
        ExecutionRecord rec;
        rec.params = config;
        rec.nprocs = p;
        rec.run_id = run_id;
        rec.runtime = sim.measure(app, config, p, run_id);
        ++run_id;
        store.append(std::move(rec));
      }
    }
  }
  return store;
}

}  // namespace hpcp
