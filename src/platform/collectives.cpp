#include "src/platform/collectives.hpp"

#include <cmath>

#include "src/common/check.hpp"

namespace hpcp {

double ceil_log2(std::size_t p) {
  HPCP_REQUIRE(p >= 1, "process count must be positive");
  if (p == 1) return 0.0;
  return std::ceil(std::log2(static_cast<double>(p)));
}

double ptp_time(const MachineModel& m, std::size_t nprocs, double bytes) {
  HPCP_REQUIRE(bytes >= 0.0, "negative message size");
  if (nprocs <= 1) return 0.0;
  return m.alpha(nprocs) + bytes * m.beta(nprocs);
}

double neighbor_exchange_time(const MachineModel& m, std::size_t nprocs,
                              double bytes, std::size_t neighbors) {
  if (nprocs <= 1 || neighbors == 0) return 0.0;
  // A process cannot have more distinct neighbours than peers.
  const std::size_t effective =
      std::min<std::size_t>(neighbors, nprocs - 1);
  return static_cast<double>(effective) * ptp_time(m, nprocs, bytes);
}

double broadcast_time(const MachineModel& m, std::size_t nprocs,
                      double bytes) {
  if (nprocs <= 1) return 0.0;
  return ceil_log2(nprocs) * (m.alpha(nprocs) + bytes * m.beta(nprocs));
}

double allreduce_time(const MachineModel& m, std::size_t nprocs,
                      double bytes) {
  HPCP_REQUIRE(bytes >= 0.0, "negative message size");
  if (nprocs <= 1) return 0.0;
  const auto p = static_cast<double>(nprocs);
  const double gamma = 1.0 / m.core_flops;  // per-byte reduction arithmetic
  return 2.0 * ceil_log2(nprocs) * m.alpha(nprocs) +
         2.0 * ((p - 1.0) / p) * bytes * m.beta(nprocs) + bytes * gamma;
}

double alltoall_time(const MachineModel& m, std::size_t nprocs, double bytes) {
  HPCP_REQUIRE(bytes >= 0.0, "negative message size");
  if (nprocs <= 1) return 0.0;
  const auto p = static_cast<double>(nprocs);
  return (p - 1.0) * (m.alpha(nprocs) + (bytes / p) * m.beta(nprocs));
}

double barrier_time(const MachineModel& m, std::size_t nprocs) {
  if (nprocs <= 1) return 0.0;
  return ceil_log2(nprocs) * m.alpha(nprocs);
}

}  // namespace hpcp
