#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/csv.hpp"
#include "src/common/error.hpp"
#include "src/data/dataset.hpp"
#include "src/linear/matrix.hpp"
#include "src/platform/simulator.hpp"

/// \file history.hpp
/// The execution-history database: the "small-scale history data" of the
/// paper's title. Stores per-run records, converts them into learning
/// datasets, and assembles per-configuration scaling tables.

namespace hpcp {

/// One completed run of one application configuration.
struct ExecutionRecord {
  std::vector<double> params;
  std::size_t nprocs = 0;
  double runtime = 0.0;
  std::uint64_t run_id = 0;
};

/// A CSV row that could not be turned into an ExecutionRecord at all
/// (unparseable number, wrong field count). 1-based data-row index.
struct HistoryParseFault {
  std::size_t row = 0;
  std::string detail;
};

/// History of a single application's runs.
class HistoryStore {
 public:
  HistoryStore() = default;
  HistoryStore(std::string app_name, std::vector<std::string> param_names);

  [[nodiscard]] const std::string& app_name() const noexcept {
    return app_name_;
  }
  [[nodiscard]] const std::vector<std::string>& param_names() const noexcept {
    return param_names_;
  }
  [[nodiscard]] const std::vector<ExecutionRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  void append(ExecutionRecord record);

  /// Ingestion-side append that skips the semantic invariants (positive
  /// runtime, nprocs ≥ 1) so that raw site data can be held for the
  /// validation layer to inspect and quarantine. The structural invariant
  /// (parameter width) still holds — a record of the wrong width cannot be
  /// represented in this store at all.
  void append_unchecked(ExecutionRecord record);

  /// Sorted distinct process counts present in the history.
  [[nodiscard]] std::vector<std::size_t> scales() const;

  /// Supervised dataset of all runs at one scale: X = params, y = runtime.
  /// Multiple runs of the same configuration stay as separate rows.
  [[nodiscard]] Dataset dataset_at_scale(std::size_t nprocs) const;

  /// CSV round trip (columns: param names…, nprocs, runtime, run_id).
  [[nodiscard]] CsvTable to_csv() const;

  /// Strict loader: throws std::invalid_argument on any schema problem,
  /// unparseable row, or semantically invalid record.
  [[nodiscard]] static HistoryStore from_csv(const std::string& app_name,
                                             const CsvTable& table);

 private:
  std::string app_name_;
  std::vector<std::string> param_names_;
  std::vector<ExecutionRecord> records_;
};

/// Result of the lenient CSV ingestion path: everything representable is
/// in `store` (including semantically bad records — NaN runtimes, zero
/// process counts — for the validation layer to quarantine); rows that
/// could not be represented are listed in `bad_rows`.
struct HistoryLoad {
  HistoryStore store;
  std::vector<HistoryParseFault> bad_rows;
};

/// Lenient loader for data that crosses a trust boundary. Returns
/// ErrorCode::Schema when the header layout is wrong (the table is not an
/// execution history at all); otherwise ingests every parseable row via
/// append_unchecked and reports the rest in bad_rows. Pair with
/// validate_history (src/data/validation.hpp) to quarantine the
/// semantically bad records it deliberately keeps.
[[nodiscard]] Expected<HistoryLoad> load_history_csv(
    const std::string& app_name, const CsvTable& table);

/// A per-configuration scaling table: one row per configuration, one
/// runtime column per scale. Configurations missing any requested scale are
/// dropped; repeated runs of the same (config, scale) are averaged.
struct ScalingTable {
  std::vector<std::string> param_names;
  std::vector<std::size_t> scales;
  Matrix configs;  ///< n × d parameter matrix
  Matrix times;    ///< n × |scales| runtimes

  [[nodiscard]] std::size_t size() const noexcept { return configs.rows(); }
};

[[nodiscard]] ScalingTable build_scaling_table(
    const HistoryStore& history, const std::vector<std::size_t>& scales);

/// Runs `app` at every (configuration, scale) pair on the simulator,
/// `runs_per_point` times each, and returns the assembled history — the
/// synthetic stand-in for a site's accounting/benchmarking database.
[[nodiscard]] HistoryStore generate_history(
    const PlatformSimulator& sim, const Application& app,
    const std::vector<std::vector<double>>& configs,
    const std::vector<std::size_t>& scales, std::size_t runs_per_point = 1,
    std::uint64_t first_run_id = 0);

}  // namespace hpcp
