#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/csv.hpp"
#include "src/data/dataset.hpp"
#include "src/linear/matrix.hpp"
#include "src/platform/simulator.hpp"

/// \file history.hpp
/// The execution-history database: the "small-scale history data" of the
/// paper's title. Stores per-run records, converts them into learning
/// datasets, and assembles per-configuration scaling tables.

namespace hpcp {

/// One completed run of one application configuration.
struct ExecutionRecord {
  std::vector<double> params;
  std::size_t nprocs = 0;
  double runtime = 0.0;
  std::uint64_t run_id = 0;
};

/// History of a single application's runs.
class HistoryStore {
 public:
  HistoryStore() = default;
  HistoryStore(std::string app_name, std::vector<std::string> param_names);

  [[nodiscard]] const std::string& app_name() const noexcept {
    return app_name_;
  }
  [[nodiscard]] const std::vector<std::string>& param_names() const noexcept {
    return param_names_;
  }
  [[nodiscard]] const std::vector<ExecutionRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  void append(ExecutionRecord record);

  /// Sorted distinct process counts present in the history.
  [[nodiscard]] std::vector<std::size_t> scales() const;

  /// Supervised dataset of all runs at one scale: X = params, y = runtime.
  /// Multiple runs of the same configuration stay as separate rows.
  [[nodiscard]] Dataset dataset_at_scale(std::size_t nprocs) const;

  /// CSV round trip (columns: param names…, nprocs, runtime, run_id).
  [[nodiscard]] CsvTable to_csv() const;
  [[nodiscard]] static HistoryStore from_csv(const std::string& app_name,
                                             const CsvTable& table);

 private:
  std::string app_name_;
  std::vector<std::string> param_names_;
  std::vector<ExecutionRecord> records_;
};

/// A per-configuration scaling table: one row per configuration, one
/// runtime column per scale. Configurations missing any requested scale are
/// dropped; repeated runs of the same (config, scale) are averaged.
struct ScalingTable {
  std::vector<std::string> param_names;
  std::vector<std::size_t> scales;
  Matrix configs;  ///< n × d parameter matrix
  Matrix times;    ///< n × |scales| runtimes

  [[nodiscard]] std::size_t size() const noexcept { return configs.rows(); }
};

[[nodiscard]] ScalingTable build_scaling_table(
    const HistoryStore& history, const std::vector<std::size_t>& scales);

/// Runs `app` at every (configuration, scale) pair on the simulator,
/// `runs_per_point` times each, and returns the assembled history — the
/// synthetic stand-in for a site's accounting/benchmarking database.
[[nodiscard]] HistoryStore generate_history(
    const PlatformSimulator& sim, const Application& app,
    const std::vector<std::vector<double>>& configs,
    const std::vector<std::size_t>& scales, std::size_t runs_per_point = 1,
    std::uint64_t first_run_id = 0);

}  // namespace hpcp
