#include "src/platform/workload.hpp"

#include "src/common/check.hpp"

namespace hpcp {

const char* phase_type_name(PhaseType type) noexcept {
  switch (type) {
    case PhaseType::kCompute: return "compute";
    case PhaseType::kNeighbor: return "neighbor";
    case PhaseType::kAllreduce: return "allreduce";
    case PhaseType::kBroadcast: return "broadcast";
    case PhaseType::kAllToAll: return "alltoall";
    case PhaseType::kBarrier: return "barrier";
    case PhaseType::kSerial: return "serial";
  }
  return "unknown";
}

Phase Phase::compute(double flops, double bytes, double repetitions,
                     double working_set) {
  HPCP_REQUIRE(flops >= 0.0 && bytes >= 0.0 && repetitions >= 0.0 &&
                   working_set >= 0.0,
               "phase quantities must be non-negative");
  return Phase{.type = PhaseType::kCompute,
               .flops = flops,
               .bytes = bytes,
               .repetitions = repetitions,
               .working_set = working_set};
}

Phase Phase::serial(double flops, double repetitions) {
  HPCP_REQUIRE(flops >= 0.0 && repetitions >= 0.0,
               "phase quantities must be non-negative");
  return Phase{.type = PhaseType::kSerial,
               .flops = flops,
               .repetitions = repetitions};
}

Phase Phase::neighbor(double bytes, std::size_t neighbors,
                      double repetitions) {
  HPCP_REQUIRE(bytes >= 0.0 && repetitions >= 0.0,
               "phase quantities must be non-negative");
  return Phase{.type = PhaseType::kNeighbor,
               .bytes = bytes,
               .neighbors = neighbors,
               .repetitions = repetitions};
}

Phase Phase::allreduce(double bytes, double repetitions,
                       std::size_t comm_size) {
  HPCP_REQUIRE(bytes >= 0.0 && repetitions >= 0.0,
               "phase quantities must be non-negative");
  return Phase{.type = PhaseType::kAllreduce,
               .bytes = bytes,
               .repetitions = repetitions,
               .comm_size = comm_size};
}

Phase Phase::broadcast(double bytes, double repetitions,
                       std::size_t comm_size) {
  HPCP_REQUIRE(bytes >= 0.0 && repetitions >= 0.0,
               "phase quantities must be non-negative");
  return Phase{.type = PhaseType::kBroadcast,
               .bytes = bytes,
               .repetitions = repetitions,
               .comm_size = comm_size};
}

Phase Phase::alltoall(double bytes, double repetitions,
                      std::size_t comm_size) {
  HPCP_REQUIRE(bytes >= 0.0 && repetitions >= 0.0,
               "phase quantities must be non-negative");
  return Phase{.type = PhaseType::kAllToAll,
               .bytes = bytes,
               .repetitions = repetitions,
               .comm_size = comm_size};
}

Phase Phase::barrier(double repetitions) {
  HPCP_REQUIRE(repetitions >= 0.0, "repetitions must be non-negative");
  return Phase{.type = PhaseType::kBarrier, .repetitions = repetitions};
}

TraceSummary summarize(const WorkloadTrace& trace) {
  TraceSummary s;
  for (const auto& phase : trace) {
    switch (phase.type) {
      case PhaseType::kCompute:
      case PhaseType::kSerial:
        s.total_flops += phase.flops * phase.repetitions;
        break;
      default:
        s.total_message_bytes += phase.bytes * phase.repetitions;
        s.num_comm_phases += phase.repetitions;
        break;
    }
  }
  return s;
}

}  // namespace hpcp
