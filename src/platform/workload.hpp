#pragma once

#include <cstddef>
#include <string>
#include <vector>

/// \file workload.hpp
/// The phase-trace abstraction applications compile themselves into.
///
/// An application run at p processes is described as a sequence of phases;
/// the simulator prices each phase with the machine and collective models.
/// `repetitions` folds loops (time-step iterations) so traces stay small.

namespace hpcp {

enum class PhaseType {
  kCompute,    ///< roofline: max(flops/core_flops, bytes/mem_bandwidth)
  kNeighbor,   ///< simultaneous point-to-point exchange with `neighbors`
  kAllreduce,
  kBroadcast,
  kAllToAll,
  kBarrier,
  kSerial,     ///< un-parallelised work executed by one process (flops)
};

[[nodiscard]] const char* phase_type_name(PhaseType type) noexcept;

struct Phase {
  PhaseType type = PhaseType::kCompute;
  double flops = 0.0;       ///< per-process floating point work (compute/serial)
  double bytes = 0.0;       ///< per-process bytes streamed (compute) or message payload
  std::size_t neighbors = 0;  ///< kNeighbor only
  double repetitions = 1.0;   ///< how many times the phase executes
  /// Collective phases only: size of the participating communicator.
  /// 0 means the whole job (the common case); 2-D-decomposed codes
  /// broadcast along process-grid rows/columns, which are smaller.
  std::size_t comm_size = 0;
  /// Compute phases only: per-process working-set size in bytes, used for
  /// the cache-regime bandwidth model. 0 = not modelled (DRAM bandwidth).
  double working_set = 0.0;

  [[nodiscard]] static Phase compute(double flops, double bytes,
                                     double repetitions = 1.0,
                                     double working_set = 0.0);
  [[nodiscard]] static Phase serial(double flops, double repetitions = 1.0);
  [[nodiscard]] static Phase neighbor(double bytes, std::size_t neighbors,
                                      double repetitions = 1.0);
  [[nodiscard]] static Phase allreduce(double bytes, double repetitions = 1.0,
                                       std::size_t comm_size = 0);
  [[nodiscard]] static Phase broadcast(double bytes, double repetitions = 1.0,
                                       std::size_t comm_size = 0);
  [[nodiscard]] static Phase alltoall(double bytes, double repetitions = 1.0,
                                      std::size_t comm_size = 0);
  [[nodiscard]] static Phase barrier(double repetitions = 1.0);
};

using WorkloadTrace = std::vector<Phase>;

/// Aggregate statistics of a trace (for inspection and tests).
struct TraceSummary {
  double total_flops = 0.0;          ///< per-process, repetitions included
  double total_message_bytes = 0.0;  ///< payload bytes across comm phases
  double num_comm_phases = 0.0;      ///< repetition-weighted count
};

[[nodiscard]] TraceSummary summarize(const WorkloadTrace& trace);

}  // namespace hpcp
