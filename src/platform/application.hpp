#pragma once

#include <span>
#include <string>

#include "src/data/param_space.hpp"
#include "src/platform/workload.hpp"

/// \file application.hpp
/// The interface an HPC application exposes to the platform: a parameter
/// space and the ability to compile a (parameters, process count) pair into
/// a workload trace.

namespace hpcp {

class Application {
 public:
  virtual ~Application() = default;

  /// Stable identifier used in records and reports.
  [[nodiscard]] virtual const std::string& name() const = 0;

  /// The application's input parameters (the features the models learn on).
  [[nodiscard]] virtual const ParameterSpace& parameter_space() const = 0;

  /// The phase trace of one run. `params` must match parameter_space().
  [[nodiscard]] virtual WorkloadTrace trace(std::span<const double> params,
                                            std::size_t nprocs) const = 0;
};

}  // namespace hpcp
