#include "src/ingest/pipeline.hpp"

#include <cmath>
#include <cstddef>
#include <limits>
#include <utility>

#include "src/common/rng.hpp"
#include "src/core/problem.hpp"
#include "src/obs/obs.hpp"

namespace hpcp::ingest {

namespace {

const ConfigRecord* find_config(std::span<const LogEntry> entries) {
  for (const auto& entry : entries) {
    if (entry.kind == LogEntry::Kind::kConfig) return &entry.config;
  }
  return nullptr;
}

std::size_t count_runs(std::span<const LogEntry> entries,
                       std::size_t limit) {
  std::size_t n = 0;
  for (const auto& entry : entries) {
    if (entry.kind != LogEntry::Kind::kRun) continue;
    if (n >= limit) break;
    ++n;
  }
  return n;
}

}  // namespace

std::uint64_t retrain_seed(const std::string& tenant,
                           std::uint64_t records) {
  // A pure hash of (tenant, records): the same retrain point in the log
  // always fits with the same randomness, which is half of the replay
  // byte-identity contract (the other half is the thread-invariant fit).
  std::uint64_t state = 0x1095ead5c0f1ab1eULL ^ records;
  for (const unsigned char c : tenant) {
    state ^= c;
    (void)splitmix64(state);
  }
  state ^= records * 0x9e3779b97f4a7c15ULL;
  return splitmix64(state);
}

Expected<CandidateFit> fit_candidate(std::span<const LogEntry> entries,
                                     std::size_t records,
                                     const std::string& tenant,
                                     const TwoLevelModel* warm_start,
                                     const RetrainOptions& opts) {
  const obs::Span span("ingest.fit_candidate");
  const ConfigRecord* config = find_config(entries);
  if (config == nullptr) {
    return Error{ErrorCode::Degenerate, "ingest log has no config record",
                 tenant};
  }
  HistoryStore store(tenant, config->param_names);
  std::size_t consumed = 0;
  std::size_t structural_drops = 0;
  for (const auto& entry : entries) {
    if (entry.kind != LogEntry::Kind::kRun) continue;
    if (consumed >= records) break;
    ++consumed;
    // A run record of the wrong parameter width cannot be represented in
    // the store at all; drop it here and account for it alongside the
    // quarantine (everything else the validation layer judges).
    if (entry.run.params.size() != config->param_names.size()) {
      ++structural_drops;
      continue;
    }
    store.append_unchecked(entry.run);
  }
  if (store.size() == 0) {
    return Error{ErrorCode::Degenerate,
                 "no representable run records in the ingest log", tenant};
  }
  auto validated = validate_history(store, opts.validation);
  if (!validated) return validated.error();
  const auto scales = validated.value().store.scales();
  if (scales.size() < 3) {
    return Error{ErrorCode::Degenerate,
                 "need at least 3 distinct scales (2 to train + 1 holdout)",
                 tenant};
  }

  CandidateFit out;
  out.consumed = consumed;
  out.quarantined =
      validated.value().report.num_quarantined() + structural_drops;
  out.holdout_scale = scales.back();

  // The holdout slice: configurations measured at *every* surviving scale
  // (repeats averaged), judged at the largest one — which the candidate
  // below never trains on.
  const auto table = build_scaling_table(validated.value().store, scales);
  if (table.size() == 0) {
    return Error{ErrorCode::Degenerate,
                 "no configuration covers every scale", tenant};
  }
  out.holdout_configs = table.configs;
  out.holdout_times = table.times.column(scales.size() - 1);

  const std::vector<std::size_t> train_scales(scales.begin(),
                                              scales.end() - 1);
  try {
    const auto problem = make_problem(validated.value().store, train_scales,
                                      config->target_scales);
    TwoLevelModel candidate(opts.model);
    Rng rng(retrain_seed(tenant, consumed));
    TwoLevelFitOptions fit_opts;
    fit_opts.threads = opts.threads;
    fit_opts.warm_start = warm_start;
    auto report = candidate.fit_checked(problem, rng, fit_opts);
    if (!report) return report.error();
    out.warm_scales = report.value().warm_scales;
    out.model = std::move(candidate);
  } catch (const std::exception& e) {
    return Error{ErrorCode::BadData, e.what(), tenant};
  }
  return out;
}

double holdout_mape(const TwoLevelModel& model, const Matrix& configs,
                    std::span<const double> actual, std::size_t scale) {
  const std::size_t scales[1] = {scale};
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t r = 0; r < configs.rows(); ++r) {
    if (actual[r] <= 0.0) continue;
    const double pred =
        model.predict_scaling_curve(configs.row(r), scales)[0];
    sum += std::abs(pred - actual[r]) / actual[r];
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n)
               : std::numeric_limits<double>::infinity();
}

ShadowOutcome judge_candidate(Expected<CandidateFit> fit,
                              std::size_t records_attempted,
                              const TwoLevelModel* incumbent) {
  const obs::Span span("ingest.judge");
  obs::count("ingest.retrains");
  ShadowOutcome out;
  out.marker.records = records_attempted;

  if (!fit) {
    out.marker.verdict = fit.error().code == ErrorCode::Degenerate
                             ? "insufficient-data"
                             : "fit-error";
    return out;
  }
  CandidateFit& cand = fit.value();
  out.marker.records = cand.consumed;
  out.marker.holdout_scale = cand.holdout_scale;
  out.quarantined = cand.quarantined;
  out.warm_scales = cand.warm_scales;
  out.marker.candidate_mape =
      holdout_mape(cand.model, cand.holdout_configs, cand.holdout_times,
                   cand.holdout_scale);

  // The incumbent shadows the exact same held-out slice. An incumbent that
  // cannot judge it (wrong feature width, unfitted, a throwing predict)
  // cannot gate anything either: the candidate bootstraps the tenant.
  bool have_incumbent = false;
  if (incumbent != nullptr && incumbent->interpolation().fitted() &&
      incumbent->interpolation().num_features() ==
          cand.holdout_configs.cols()) {
    try {
      out.marker.incumbent_mape =
          holdout_mape(*incumbent, cand.holdout_configs, cand.holdout_times,
                       cand.holdout_scale);
      have_incumbent = true;
    } catch (const std::exception&) {
      have_incumbent = false;
    }
  }
  if (have_incumbent) {
    // Strictly better or the incumbent stays — a tie (and a NaN) is a loss.
    out.promoted = out.marker.candidate_mape < out.marker.incumbent_mape;
    out.marker.verdict = out.promoted ? "promoted" : "rejected";
  } else {
    out.marker.incumbent_mape = 0.0;
    out.promoted = true;
    out.marker.verdict = "no-incumbent";
  }
  out.candidate = std::move(cand.model);
  obs::count(out.promoted ? "ingest.promotions" : "ingest.rejections");
  return out;
}

ShadowOutcome shadow_retrain(std::span<const LogEntry> entries,
                             std::size_t records, const std::string& tenant,
                             const TwoLevelModel* incumbent,
                             const TwoLevelModel* warm_start,
                             const RetrainOptions& opts) {
  const obs::Span span("ingest.shadow_retrain");
  return judge_candidate(
      fit_candidate(entries, records, tenant, warm_start, opts),
      count_runs(entries, records), incumbent);
}

Expected<ReplayResult> replay_log(std::span<const LogEntry> entries,
                                  const std::string& tenant,
                                  const RetrainOptions& opts) {
  const obs::Span span("ingest.replay");
  ReplayResult out;
  std::optional<TwoLevelModel> chain;
  for (const auto& entry : entries) {
    if (entry.kind != LogEntry::Kind::kPromote) continue;
    if (entry.promote.version == 0) {
      ++out.rejections;
      continue;
    }
    // Refit the candidate exactly as the live scheduler did: same log
    // prefix, same seed, warm-started from the previous link of the chain.
    auto fit = fit_candidate(entries, entry.promote.records, tenant,
                             chain ? &*chain : nullptr, opts);
    if (!fit) return fit.error();
    chain = std::move(fit.value().model);
    out.version = entry.promote.version;
    ++out.promotions;
  }
  if (!chain) {
    return Error{ErrorCode::Degenerate,
                 "ingest log holds no promoted retrain", tenant};
  }
  out.model = std::move(*chain);
  return out;
}

}  // namespace hpcp::ingest
