#include "src/ingest/run_log.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

#include "src/obs/jsonlite.hpp"

namespace hpcp::ingest {

namespace {

void append_number(std::string& out, double v) {
  obs::json_number_into(out, v);
}

void append_size(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

/// A JSON number that is a non-negative integer, or nullopt.
std::optional<std::uint64_t> as_index(const obs::JsonValue& v) {
  if (v.kind() != obs::JsonValue::Kind::Number) return std::nullopt;
  const double n = v.as_number();
  if (!std::isfinite(n) || n < 0.0 || n != std::floor(n)) return std::nullopt;
  return static_cast<std::uint64_t>(n);
}

std::optional<LogEntry> parse_entry(std::string_view line) {
  obs::JsonValue doc;
  try {
    doc = obs::parse_json(line);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  try {
    if (doc.at("schema").as_string() != kIngestSchema) return std::nullopt;
    const std::string& type = doc.at("type").as_string();
    LogEntry entry;
    if (type == "config") {
      entry.kind = LogEntry::Kind::kConfig;
      for (const auto& name : doc.at("params").as_array()) {
        entry.config.param_names.push_back(name.as_string());
      }
      for (const auto& scale : doc.at("target_scales").as_array()) {
        const auto s = as_index(scale);
        if (!s) return std::nullopt;
        entry.config.target_scales.push_back(static_cast<std::size_t>(*s));
      }
      return entry;
    }
    if (type == "run") {
      entry.kind = LogEntry::Kind::kRun;
      const auto run_id = as_index(doc.at("run_id"));
      const auto nprocs = as_index(doc.at("nprocs"));
      if (!run_id || !nprocs) return std::nullopt;
      entry.run.run_id = *run_id;
      entry.run.nprocs = static_cast<std::size_t>(*nprocs);
      // The runtime must be a number, but *any* finite number: failed runs
      // recorded as 0 or negative are the quarantine layer's job, not a
      // parse failure.
      if (doc.at("runtime").kind() != obs::JsonValue::Kind::Number) {
        return std::nullopt;
      }
      entry.run.runtime = doc.at("runtime").as_number();
      for (const auto& p : doc.at("params").as_array()) {
        if (p.kind() != obs::JsonValue::Kind::Number) return std::nullopt;
        entry.run.params.push_back(p.as_number());
      }
      return entry;
    }
    if (type == "promote") {
      entry.kind = LogEntry::Kind::kPromote;
      const auto records = as_index(doc.at("records"));
      const auto version = as_index(doc.at("version"));
      const auto holdout = as_index(doc.at("holdout_scale"));
      if (!records || !version || !holdout) return std::nullopt;
      entry.promote.records = *records;
      entry.promote.version = *version;
      entry.promote.holdout_scale = static_cast<std::size_t>(*holdout);
      entry.promote.verdict = doc.at("verdict").as_string();
      entry.promote.candidate_mape = doc.at("candidate_mape").as_number();
      entry.promote.incumbent_mape = doc.at("incumbent_mape").as_number();
      return entry;
    }
  } catch (const std::exception&) {
    return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace

std::string render_entry(const LogEntry& entry) {
  std::string out = "{\"schema\":\"";
  out += kIngestSchema;
  out += "\",\"type\":\"";
  switch (entry.kind) {
    case LogEntry::Kind::kConfig: {
      out += "config\",\"params\":[";
      for (std::size_t i = 0; i < entry.config.param_names.size(); ++i) {
        if (i > 0) out += ',';
        out += obs::json_quote(entry.config.param_names[i]);
      }
      out += "],\"target_scales\":[";
      for (std::size_t i = 0; i < entry.config.target_scales.size(); ++i) {
        if (i > 0) out += ',';
        append_size(out, entry.config.target_scales[i]);
      }
      out += "]}";
      return out;
    }
    case LogEntry::Kind::kRun: {
      out += "run\",\"run_id\":";
      append_size(out, entry.run.run_id);
      out += ",\"params\":[";
      for (std::size_t i = 0; i < entry.run.params.size(); ++i) {
        if (i > 0) out += ',';
        append_number(out, entry.run.params[i]);
      }
      out += "],\"nprocs\":";
      append_size(out, entry.run.nprocs);
      out += ",\"runtime\":";
      append_number(out, entry.run.runtime);
      out += '}';
      return out;
    }
    case LogEntry::Kind::kPromote: {
      out += "promote\",\"records\":";
      append_size(out, entry.promote.records);
      out += ",\"version\":";
      append_size(out, entry.promote.version);
      out += ",\"verdict\":";
      out += obs::json_quote(entry.promote.verdict);
      out += ",\"holdout_scale\":";
      append_size(out, entry.promote.holdout_scale);
      out += ",\"candidate_mape\":";
      append_number(out, entry.promote.candidate_mape);
      out += ",\"incumbent_mape\":";
      append_number(out, entry.promote.incumbent_mape);
      out += '}';
      return out;
    }
  }
  return out;
}

LogReadResult parse_log(std::string_view text) {
  LogReadResult result;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) {
      // A line without its terminator is a torn append: recoverable by
      // construction — everything before it is intact.
      result.truncated_tail = true;
      break;
    }
    const std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    if (auto entry = parse_entry(line)) {
      result.entries.push_back(std::move(*entry));
    } else {
      ++result.malformed_lines;
    }
  }
  return result;
}

RunLog::RunLog(RunLog&& other) noexcept
    : path_(std::move(other.path_)), fd_(std::exchange(other.fd_, -1)) {}

RunLog& RunLog::operator=(RunLog&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

RunLog::~RunLog() {
  if (fd_ >= 0) ::close(fd_);
}

std::string RunLog::log_path(const std::string& root,
                             const std::string& tenant) {
  return root + "/" + tenant + "/" + kLogFileName;
}

Expected<RunLog> RunLog::open(const std::string& root,
                              const std::string& tenant) {
  // Best-effort directory creation: a tenant may start ingesting before
  // its first archive exists. EEXIST is the common case, not an error.
  (void)::mkdir(root.c_str(), 0777);
  (void)::mkdir((root + "/" + tenant).c_str(), 0777);
  RunLog log;
  log.path_ = log_path(root, tenant);
  log.fd_ = ::open(log.path_.c_str(),
                   O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0666);
  if (log.fd_ < 0) {
    return Error{ErrorCode::Io,
                 std::string("cannot open ingest log: ") +
                     std::strerror(errno),
                 log.path_};
  }
  return log;
}

Expected<void> RunLog::append(const LogEntry& entry) {
  if (fd_ < 0) {
    return Error{ErrorCode::Io, "ingest log is not open", path_};
  }
  std::string line = render_entry(entry);
  line += '\n';
  // One write per line against O_APPEND: a crash mid-call can only tear
  // the final line, which the reader skips.
  std::size_t written = 0;
  while (written < line.size()) {
    const ssize_t n =
        ::write(fd_, line.data() + written, line.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Error{ErrorCode::Io,
                   std::string("ingest log write failed: ") +
                       std::strerror(errno),
                   path_};
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    return Error{ErrorCode::Io,
                 std::string("ingest log fsync failed: ") +
                     std::strerror(errno),
                 path_};
  }
  return {};
}

Expected<LogReadResult> RunLog::read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    // Distinguish "no log yet" (fine) from an unreadable file (Io).
    struct stat st {};
    if (::stat(path.c_str(), &st) != 0 && errno == ENOENT) {
      return LogReadResult{};
    }
    return Error{ErrorCode::Io, "cannot open ingest log", path};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return Error{ErrorCode::Io, "cannot read ingest log", path};
  }
  return parse_log(buf.str());
}

}  // namespace hpcp::ingest
