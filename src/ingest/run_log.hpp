#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/error.hpp"
#include "src/platform/history.hpp"

/// \file run_log.hpp (ingest)
/// The append-only per-tenant run log — the durable input of the
/// continuous-learning loop.
///
/// Layout: `<registry root>/<tenant>/ingest.jsonl`, one `hpcp-ingest/1`
/// JSON record per line, three record types:
///
///   config   {"schema":"hpcp-ingest/1","type":"config",
///             "params":["p0",...],"target_scales":[32,...]}
///   run      {"schema":"hpcp-ingest/1","type":"run","run_id":N,
///             "params":[...],"nprocs":N,"runtime":X}
///   promote  {"schema":"hpcp-ingest/1","type":"promote","records":N,
///             "version":V,"verdict":"...","holdout_scale":S,
///             "candidate_mape":X,"incumbent_mape":Y}
///
/// The log is the source of truth of the whole loop: a `config` record
/// pins the training spec (parameter names, target scales), `run` records
/// carry raw site measurements, and each `promote` record marks a retrain
/// attempt — how many run records the candidate consumed, the registry
/// version it was published as (0 = rejected), and the shadow verdict.
/// Everything downstream (pipeline.hpp) is a deterministic function of
/// these bytes, which is what makes `hpcp ingest --rebuild` reproduce the
/// served archive bit-for-bit at any thread count.
///
/// Appends are one write(2) of a whole line against an O_APPEND fd
/// followed by fsync, so a crash can only lose or truncate the *tail*
/// line; the reader skips an unterminated tail (and any malformed line)
/// with a count instead of failing, mirroring the lenient CSV ingestion
/// path. Semantically bad-but-representable records (non-positive
/// runtimes, zero process counts, duplicate run ids) are deliberately
/// kept for the validation layer to quarantine.

namespace hpcp::ingest {

inline constexpr const char* kIngestSchema = "hpcp-ingest/1";
inline constexpr const char* kLogFileName = "ingest.jsonl";

/// Training spec pinned at log creation.
struct ConfigRecord {
  std::vector<std::string> param_names;
  std::vector<std::size_t> target_scales;
};

/// One retrain attempt and its shadow verdict.
struct PromoteRecord {
  std::uint64_t records = 0;      ///< run records the candidate consumed
  std::uint64_t version = 0;      ///< registry version published (0 = none)
  std::string verdict;            ///< "promoted", "rejected", ...
  std::size_t holdout_scale = 0;  ///< leave-largest-scale-out holdout
  double candidate_mape = 0.0;
  double incumbent_mape = 0.0;
};

/// One parsed log line.
struct LogEntry {
  enum class Kind { kConfig, kRun, kPromote };
  Kind kind = Kind::kRun;
  ConfigRecord config;     ///< kConfig only
  ExecutionRecord run;     ///< kRun only
  PromoteRecord promote;   ///< kPromote only
};

/// Everything a read pass recovered from a log file.
struct LogReadResult {
  std::vector<LogEntry> entries;
  std::size_t malformed_lines = 0;  ///< unparseable / wrong-schema lines
  bool truncated_tail = false;      ///< unterminated final line skipped
};

/// Canonical single-line rendering (no trailing newline). Append exactly
/// these bytes + '\n' — replay byte-identity depends on one rendering.
[[nodiscard]] std::string render_entry(const LogEntry& entry);

/// Parses a whole log text; never throws on content (see LogReadResult).
[[nodiscard]] LogReadResult parse_log(std::string_view text);

/// Writer + reader handle for one tenant's log. Move-only (owns the fd).
class RunLog {
 public:
  RunLog() = default;
  RunLog(RunLog&& other) noexcept;
  RunLog& operator=(RunLog&& other) noexcept;
  RunLog(const RunLog&) = delete;
  RunLog& operator=(const RunLog&) = delete;
  ~RunLog();

  /// Opens (creating the directory and file as needed)
  /// `<root>/<tenant>/ingest.jsonl` for appending.
  [[nodiscard]] static Expected<RunLog> open(const std::string& root,
                                             const std::string& tenant);

  /// Path of a tenant's log, purely syntactic.
  [[nodiscard]] static std::string log_path(const std::string& root,
                                            const std::string& tenant);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }

  /// Appends one entry: a single whole-line write(2) + fsync. The entry is
  /// durable (or the log is untouched past a torn tail) when this returns.
  [[nodiscard]] Expected<void> append(const LogEntry& entry);

  /// Reads and parses the whole log. A missing file is an empty log, not
  /// an error (a fresh tenant has not ingested anything yet).
  [[nodiscard]] static Expected<LogReadResult> read_file(
      const std::string& path);

 private:
  std::string path_;
  int fd_ = -1;
};

}  // namespace hpcp::ingest
