#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "src/common/error.hpp"
#include "src/core/two_level_model.hpp"
#include "src/data/validation.hpp"
#include "src/ingest/run_log.hpp"

/// \file pipeline.hpp (ingest)
/// The deterministic half of the continuous-learning loop: everything
/// between "here are the log entries" and "here is the candidate model and
/// its shadow verdict" is a pure function, so the served model can be
/// rebuilt bit-for-bit from the log alone (`replay_log`), at any thread
/// count — the serving layer only adds *when* retrains happen and *which*
/// incumbent the candidate shadows.
///
/// Retrain recipe (fit_candidate):
///   1. run records (the first `records` of them) → HistoryStore with the
///      config record's parameter names;
///   2. validate_history quarantines the semantically bad records;
///   3. leave-largest-scale-out: the largest surviving scale becomes the
///      holdout, the rest train the candidate (so the shadow comparison
///      happens on measurements the candidate never saw);
///   4. the fit seeds from (tenant, records) and optionally warm-starts
///      from the previous promoted candidate's forest structure.
///
/// Shadow gate (shadow_retrain): candidate and incumbent both predict the
/// holdout scale through predict_scaling_curve; the candidate is promoted
/// only when its holdout MAPE is strictly better — a tie keeps the
/// incumbent. With no usable incumbent the candidate bootstraps the tenant
/// ("no-incumbent"). Every attempt yields a PromoteRecord for the log.
///
/// Warm-start chain: candidates warm-start strictly from the *previous
/// log-derived promoted candidate* (the chain replay_log reconstructs),
/// never from an externally seeded incumbent — otherwise a rebuild from
/// the log could not reproduce the served bytes.

namespace hpcp::ingest {

/// Statistical and execution options of a retrain; one value of this
/// must be shared by the live scheduler and any replay for byte-identity.
struct RetrainOptions {
  TwoLevelOptions model{};         ///< candidate model options
  ValidationOptions validation{};  ///< quarantine policy
  std::size_t threads = 0;         ///< fit width (result is bitwise
                                   ///< identical for every value)
};

/// Deterministic fit seed: a pure hash of (tenant, records).
[[nodiscard]] std::uint64_t retrain_seed(const std::string& tenant,
                                         std::uint64_t records);

/// A fitted candidate plus the held-out slice it must be judged on.
struct CandidateFit {
  TwoLevelModel model;
  std::size_t consumed = 0;     ///< run records consumed from the log
  std::size_t quarantined = 0;  ///< records the validation layer removed
  std::size_t warm_scales = 0;  ///< forests that took the warm path
  std::size_t holdout_scale = 0;
  Matrix holdout_configs;             ///< rows complete at every scale
  std::vector<double> holdout_times;  ///< measured mean runtime per row
};

/// Trains a candidate on the first `records` run records of `entries`
/// (SIZE_MAX = all). Degenerate when the log has no config record, too few
/// distinct scales (< 3: training needs at least two plus the holdout), or
/// nothing survives quarantine.
[[nodiscard]] Expected<CandidateFit> fit_candidate(
    std::span<const LogEntry> entries, std::size_t records,
    const std::string& tenant, const TwoLevelModel* warm_start,
    const RetrainOptions& opts);

/// Mean absolute percentage error of `model` on the holdout slice.
[[nodiscard]] double holdout_mape(const TwoLevelModel& model,
                                  const Matrix& configs,
                                  std::span<const double> actual,
                                  std::size_t scale);

/// One retrain attempt end to end: fit + shadow comparison + verdict.
struct ShadowOutcome {
  PromoteRecord marker;   ///< log record of the attempt (version still 0 —
                          ///< the caller fills it in after publishing)
  bool promoted = false;  ///< candidate won (or bootstrapped) the gate
  std::size_t quarantined = 0;
  std::size_t warm_scales = 0;
  std::optional<TwoLevelModel> candidate;  ///< present when a fit succeeded
};

/// The judging half on its own: the background scheduler runs
/// fit_candidate off-thread and judges at completion time, so the
/// comparison always shadows the incumbent actually live at promotion
/// time. `records_attempted` labels the marker when the fit itself failed.
/// Never fails: fit errors become verdicts ("insufficient-data",
/// "fit-error") with promoted == false, because a bad batch of site data
/// must degrade one retrain, not the serving loop.
[[nodiscard]] ShadowOutcome judge_candidate(Expected<CandidateFit> fit,
                                            std::size_t records_attempted,
                                            const TwoLevelModel* incumbent);

/// fit_candidate + judge_candidate in one call (the synchronous path).
[[nodiscard]] ShadowOutcome shadow_retrain(std::span<const LogEntry> entries,
                                           std::size_t records,
                                           const std::string& tenant,
                                           const TwoLevelModel* incumbent,
                                           const TwoLevelModel* warm_start,
                                           const RetrainOptions& opts);

/// The final promoted model reconstructed purely from the log.
struct ReplayResult {
  TwoLevelModel model;
  std::uint64_t version = 0;   ///< registry version of the last promotion
  std::size_t promotions = 0;  ///< promote markers with version > 0
  std::size_t rejections = 0;  ///< promote markers with version == 0
};

/// Folds over the promote markers: at each promoted marker the candidate
/// is refitted from the marker's log prefix (warm-started from the
/// previous link of the chain) and adopted. Degenerate when the log holds
/// no promotion yet; an error refitting at a marker propagates (the log
/// no longer supports its own markers — corruption, not a data fault).
[[nodiscard]] Expected<ReplayResult> replay_log(
    std::span<const LogEntry> entries, const std::string& tenant,
    const RetrainOptions& opts);

}  // namespace hpcp::ingest
