#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/ingest/pipeline.hpp"
#include "src/ingest/run_log.hpp"
#include "src/registry/residency.hpp"

/// \file scheduler.hpp (ingest)
/// The serving-side half of the continuous-learning loop: appends run
/// records to per-tenant logs, triggers background retrains on the shared
/// thread pool, and completes shadow-gated promotions into the registry.
///
/// Confinement mirrors ModelPool: every method runs on the serving thread.
/// The only off-thread work is the candidate *fit* (a pure function of a
/// log snapshot, submitted to the global pool with at most one in flight
/// per tenant); judging, the promote marker, the registry publish, the
/// manifest annotation, and the epoch-swap reload all happen back on the
/// serving thread inside pump()/retrain_now(), so the predict path is
/// never blocked and never races.
///
/// Triggers: a record threshold (`retrain_records` run records since the
/// last attempt) and a wall-clock interval (`retrain_interval_ms` with at
/// least one new record). Both default to off — an explicit
/// {"cmd":"retrain"} always works.

namespace hpcp::ingest {

struct SchedulerOptions {
  RetrainOptions retrain{};
  /// Run records since the last retrain attempt that trigger a background
  /// retrain; 0 disables the threshold trigger.
  std::size_t retrain_records = 0;
  /// Milliseconds between background retrains of a tenant with new data;
  /// 0 disables the interval trigger.
  std::uint64_t retrain_interval_ms = 0;
};

/// Per-tenant counters surfaced through health/stats. All counters are
/// per-process (the log itself is the durable account), which keeps
/// replayed response streams byte-identical regardless of what an earlier
/// run already appended to the same store.
struct TenantIngestStats {
  std::uint64_t appended = 0;  ///< run records appended this session
  std::uint64_t retrains = 0;  ///< attempts judged this session
  std::uint64_t promotions = 0;
  std::uint64_t rejections = 0;
  std::uint64_t quarantined = 0;  ///< summed over this session's attempts
  std::size_t warm_scales = 0;    ///< of the last fitted candidate
  std::string last_verdict;       ///< "" until the first attempt
  std::uint64_t last_version = 0;
  std::size_t last_holdout_scale = 0;
  double last_candidate_mape = 0.0;
  double last_incumbent_mape = 0.0;
  bool in_flight = false;
};

class IngestScheduler {
 public:
  /// The pool supplies incumbents, the registry to publish into, and the
  /// epoch swap; it must outlive the scheduler.
  IngestScheduler(registry::ModelPool& pool, SchedulerOptions opts);

  /// Appends one run record to `tenant`'s log (creating it, config record
  /// first, on first use — the config derives from the tenant's resident
  /// model, so an unknown tenant cannot ingest). Returns this session's
  /// appended-record count for the ack.
  [[nodiscard]] Expected<std::uint64_t> append(const std::string& tenant,
                                               const ExecutionRecord& record);

  /// Synchronous retrain + shadow judgement + (on promotion) publish,
  /// marker, annotation, and reload. Rejected while a background retrain
  /// for the tenant is in flight.
  [[nodiscard]] Expected<ShadowOutcome> retrain_now(
      const std::string& tenant);

  /// The serving-loop pump: completes finished background fits (judging,
  /// publishing, reloading) and fires due triggers. Returns the tenants
  /// whose model was promoted (already reloaded in the pool).
  std::vector<std::string> pump(std::uint64_t now_ms);

  /// True when any tenant has a background fit in flight.
  [[nodiscard]] bool busy() const;

  [[nodiscard]] const SchedulerOptions& options() const noexcept {
    return opts_;
  }
  /// Sorted per-tenant stats (only tenants that ingested this session).
  [[nodiscard]] std::vector<std::pair<std::string, TenantIngestStats>>
  stats() const;
  /// Aggregate counters, e.g. for the health line.
  struct Totals {
    std::uint64_t appended = 0;
    std::uint64_t retrains = 0;
    std::uint64_t promotions = 0;
    std::uint64_t rejections = 0;
    std::size_t in_flight = 0;
  };
  [[nodiscard]] Totals totals() const;

 private:
  struct TenantState {
    RunLog log;
    TenantIngestStats stats;
    std::uint64_t runs_since_attempt = 0;
    std::uint64_t last_attempt_ms = 0;
    bool attempted = false;  ///< any attempt yet (anchors the interval)
    /// Warm-start chain: the last *log-derived* promoted candidate (never
    /// the externally seeded incumbent), shared with the in-flight task.
    std::shared_ptr<const TwoLevelModel> chain;
    std::future<Expected<CandidateFit>> pending;
    std::size_t pending_records = 0;
  };

  [[nodiscard]] Expected<TenantState*> state_for(const std::string& tenant);
  /// Judges a finished fit and completes the promotion protocol.
  ShadowOutcome finish_attempt(const std::string& tenant, TenantState& state,
                               Expected<CandidateFit> fit,
                               std::size_t records);
  [[nodiscard]] Expected<void> start_background(const std::string& tenant,
                                                TenantState& state,
                                                std::uint64_t now_ms);

  registry::ModelPool& pool_;
  SchedulerOptions opts_;
  std::map<std::string, TenantState> tenants_;
};

}  // namespace hpcp::ingest
