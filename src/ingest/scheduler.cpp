#include "src/ingest/scheduler.hpp"

#include <chrono>
#include <utility>

#include "src/common/thread_pool.hpp"
#include "src/obs/obs.hpp"

namespace hpcp::ingest {

IngestScheduler::IngestScheduler(registry::ModelPool& pool,
                                 SchedulerOptions opts)
    : pool_(pool), opts_(std::move(opts)) {}

Expected<IngestScheduler::TenantState*> IngestScheduler::state_for(
    const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it != tenants_.end()) return &it->second;

  // First touch: the config record (parameter width + target scales)
  // derives from the tenant's resident model, so ingesting requires a
  // model to improve on — an unknown tenant is a typed error, not a
  // silently growing orphan log.
  auto resident = pool_.acquire(tenant);
  if (!resident) return resident.error();

  auto log = RunLog::open(pool_.registry().root(), tenant);
  if (!log) return log.error();

  auto existing = RunLog::read_file(log.value().path());
  if (!existing) return existing.error();
  const bool has_config = [&] {
    for (const auto& entry : existing.value().entries) {
      if (entry.kind == LogEntry::Kind::kConfig) return true;
    }
    return false;
  }();
  if (!has_config) {
    LogEntry config;
    config.kind = LogEntry::Kind::kConfig;
    for (std::size_t i = 0; i < resident.value()->num_features; ++i) {
      config.config.param_names.push_back("p" + std::to_string(i));
    }
    config.config.target_scales = resident.value()->default_scales;
    if (auto appended = log.value().append(config); !appended) {
      return appended.error();
    }
  }

  auto [pos, inserted] = tenants_.try_emplace(tenant);
  pos->second.log = std::move(log.value());
  return &pos->second;
}

Expected<std::uint64_t> IngestScheduler::append(
    const std::string& tenant, const ExecutionRecord& record) {
  auto state = state_for(tenant);
  if (!state) return state.error();
  LogEntry entry;
  entry.kind = LogEntry::Kind::kRun;
  entry.run = record;
  if (auto appended = state.value()->log.append(entry); !appended) {
    return appended.error();
  }
  obs::count("ingest.appends");
  ++state.value()->stats.appended;
  ++state.value()->runs_since_attempt;
  return state.value()->stats.appended;
}

ShadowOutcome IngestScheduler::finish_attempt(const std::string& tenant,
                                              TenantState& state,
                                              Expected<CandidateFit> fit,
                                              std::size_t records) {
  // The incumbent is whatever is live *now* — the true shadow comparison.
  const TwoLevelModel* incumbent = nullptr;
  std::shared_ptr<const registry::ResidentModel> pin;
  if (auto resident = pool_.acquire(tenant)) {
    pin = resident.value();
    incumbent = &pin->model;
  }
  ShadowOutcome outcome = judge_candidate(std::move(fit), records, incumbent);

  if (outcome.promoted && outcome.candidate.has_value()) {
    auto version = pool_.registry().add_model(tenant, *outcome.candidate);
    if (version) {
      outcome.marker.version = version.value();
    } else {
      // The archive could not be published: the incumbent keeps serving
      // and the marker records a rejection-by-publish-failure.
      outcome.promoted = false;
      outcome.marker.verdict = "publish-failed";
    }
  }
  // The marker is the durable account of the attempt — promoted or not —
  // and the replay anchor, so it is appended before the epoch swap.
  (void)state.log.append([&] {
    LogEntry entry;
    entry.kind = LogEntry::Kind::kPromote;
    entry.promote = outcome.marker;
    return entry;
  }());
  (void)pool_.registry().annotate(tenant, "shadow_verdict",
                                  outcome.marker.verdict);

  if (outcome.promoted && outcome.candidate.has_value()) {
    state.chain =
        std::make_shared<const TwoLevelModel>(*outcome.candidate);
    (void)pool_.reload(tenant);
  }

  ++state.stats.retrains;
  state.stats.quarantined += outcome.quarantined;
  state.stats.warm_scales = outcome.warm_scales;
  state.stats.last_verdict = outcome.marker.verdict;
  state.stats.last_version = outcome.marker.version;
  state.stats.last_holdout_scale = outcome.marker.holdout_scale;
  state.stats.last_candidate_mape = outcome.marker.candidate_mape;
  state.stats.last_incumbent_mape = outcome.marker.incumbent_mape;
  if (outcome.promoted) {
    ++state.stats.promotions;
  } else {
    ++state.stats.rejections;
  }
  state.runs_since_attempt = 0;
  return outcome;
}

Expected<ShadowOutcome> IngestScheduler::retrain_now(
    const std::string& tenant) {
  auto state = state_for(tenant);
  if (!state) return state.error();
  TenantState& t = *state.value();
  if (t.stats.in_flight) {
    return Error{ErrorCode::Degenerate,
                 "a background retrain is already in flight", tenant};
  }
  auto snapshot = RunLog::read_file(t.log.path());
  if (!snapshot) return snapshot.error();
  const auto& entries = snapshot.value().entries;
  std::size_t records = 0;
  for (const auto& entry : entries) {
    records += entry.kind == LogEntry::Kind::kRun ? 1 : 0;
  }
  auto fit = fit_candidate(entries, records, tenant, t.chain.get(),
                           opts_.retrain);
  t.attempted = true;
  return finish_attempt(tenant, t, std::move(fit), records);
}

Expected<void> IngestScheduler::start_background(const std::string& tenant,
                                                 TenantState& state,
                                                 std::uint64_t now_ms) {
  auto snapshot = RunLog::read_file(state.log.path());
  if (!snapshot) return snapshot.error();
  auto entries = std::make_shared<const std::vector<LogEntry>>(
      std::move(snapshot.value().entries));
  std::size_t records = 0;
  for (const auto& entry : *entries) {
    records += entry.kind == LogEntry::Kind::kRun ? 1 : 0;
  }
  // The task captures only immutable snapshots (entries, warm chain,
  // options) — a pure function computed off-thread.
  auto chain = state.chain;
  auto opts = opts_.retrain;
  state.pending = global_thread_pool().submit(
      [entries, chain, tenant, records, opts]() {
        return fit_candidate(*entries, records, tenant, chain.get(), opts);
      });
  state.pending_records = records;
  state.stats.in_flight = true;
  state.attempted = true;
  state.last_attempt_ms = now_ms;
  state.runs_since_attempt = 0;
  obs::count("ingest.background_retrains");
  return {};
}

std::vector<std::string> IngestScheduler::pump(std::uint64_t now_ms) {
  std::vector<std::string> promoted;
  for (auto& [tenant, state] : tenants_) {
    if (state.stats.in_flight &&
        state.pending.wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready) {
      state.stats.in_flight = false;
      const ShadowOutcome outcome = finish_attempt(
          tenant, state, state.pending.get(), state.pending_records);
      if (outcome.promoted) promoted.push_back(tenant);
    }
    if (state.stats.in_flight) continue;

    const bool threshold_due = opts_.retrain_records > 0 &&
                               state.runs_since_attempt >=
                                   opts_.retrain_records;
    const bool interval_due =
        opts_.retrain_interval_ms > 0 && state.runs_since_attempt > 0 &&
        (!state.attempted ||
         now_ms - state.last_attempt_ms >= opts_.retrain_interval_ms);
    if (threshold_due || interval_due) {
      (void)start_background(tenant, state, now_ms);
    }
  }
  return promoted;
}

bool IngestScheduler::busy() const {
  for (const auto& [tenant, state] : tenants_) {
    if (state.stats.in_flight) return true;
  }
  return false;
}

std::vector<std::pair<std::string, TenantIngestStats>>
IngestScheduler::stats() const {
  std::vector<std::pair<std::string, TenantIngestStats>> out;
  out.reserve(tenants_.size());
  for (const auto& [tenant, state] : tenants_) {
    out.emplace_back(tenant, state.stats);
  }
  return out;
}

IngestScheduler::Totals IngestScheduler::totals() const {
  Totals t;
  for (const auto& [tenant, state] : tenants_) {
    t.appended += state.stats.appended;
    t.retrains += state.stats.retrains;
    t.promotions += state.stats.promotions;
    t.rejections += state.stats.rejections;
    t.in_flight += state.stats.in_flight ? 1 : 0;
  }
  return t;
}

}  // namespace hpcp::ingest
