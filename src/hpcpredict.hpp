#pragma once

/// \file hpcpredict.hpp
/// Umbrella header: the library's whole public API.
///
/// hpcpredict reproduces "Using Small-Scale History Data to Predict
/// Large-Scale Performance of HPC Application" (Zhou, Zhang, Sun, Sun —
/// IPDPSW 2020): a two-level model that predicts an HPC application's
/// runtime at large process counts from a history containing only
/// small-scale runs. See README.md for a walkthrough and DESIGN.md for the
/// architecture.

// common utilities
#include "src/common/check.hpp"
#include "src/common/csv.hpp"
#include "src/common/error.hpp"
#include "src/common/metrics.hpp"
#include "src/common/rng.hpp"
#include "src/common/serialize.hpp"
#include "src/common/stats.hpp"
#include "src/common/table.hpp"
#include "src/common/thread_pool.hpp"

// datasets and sampling
#include "src/data/dataset.hpp"
#include "src/data/param_space.hpp"
#include "src/data/validation.hpp"

// learners
#include "src/cluster/curve_features.hpp"
#include "src/cluster/kmeans.hpp"
#include "src/forest/binning.hpp"
#include "src/forest/flat_forest.hpp"
#include "src/forest/gbm.hpp"
#include "src/forest/random_forest.hpp"
#include "src/forest/tree.hpp"
#include "src/linear/cv.hpp"
#include "src/linear/lasso.hpp"
#include "src/linear/matrix.hpp"
#include "src/linear/multitask_lasso.hpp"
#include "src/linear/ols.hpp"
#include "src/linear/scaler.hpp"
#include "src/linear/solve.hpp"

// simulated platform and applications
#include "src/apps/lu_app.hpp"
#include "src/apps/nbody_app.hpp"
#include "src/apps/registry.hpp"
#include "src/apps/spectral_app.hpp"
#include "src/apps/stencil_app.hpp"
#include "src/platform/application.hpp"
#include "src/platform/collectives.hpp"
#include "src/platform/fault_injector.hpp"
#include "src/platform/history.hpp"
#include "src/platform/machine.hpp"
#include "src/platform/proc_grid.hpp"
#include "src/platform/simulator.hpp"
#include "src/platform/trace_report.hpp"
#include "src/platform/workload.hpp"

// the paper's model and the evaluation harness
#include "src/core/active_sampler.hpp"
#include "src/core/evaluator.hpp"
#include "src/core/experiment.hpp"
#include "src/core/extrapolation_level.hpp"
#include "src/core/extrapolation_model.hpp"
#include "src/core/interpolation_level.hpp"
#include "src/core/problem.hpp"
#include "src/core/scaling_basis.hpp"
#include "src/core/train_report.hpp"
#include "src/core/two_level_model.hpp"

// baselines
#include "src/baselines/direct_models.hpp"
#include "src/baselines/extrap_model.hpp"
#include "src/baselines/presets.hpp"
