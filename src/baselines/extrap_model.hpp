#pragma once

#include <string>
#include <vector>

#include "src/core/extrapolation_model.hpp"
#include "src/core/interpolation_level.hpp"

/// \file extrap_model.hpp
/// Extra-P-style per-configuration hypothesis search — the classical
/// analytical-modeling comparator. Each configuration's scaling curve is
/// fitted independently against the performance-model normal form
///   t(p) = c₀ + c₁ · pᵃ · log₂(p)ᵇ
/// over a grid of exponents (a, b); the hypothesis with the smallest
/// leave-largest-scale-out error wins and is extrapolated to the target
/// scales. Unlike the paper's method there is no information sharing across
/// configurations, so noisy curves pick wrong hypotheses.

namespace hpcp {

struct HypothesisSearchOptions {
  /// true: fit the test configuration's *measured* small-scale curve
  /// (requires measurements at prediction time); false: fit the curve
  /// predicted by an internal interpolation level (pure history mode).
  bool use_measured_curve = false;
  ForestOptions forest{};
};

class HypothesisSearchModel final : public ExtrapolationModel {
 public:
  HypothesisSearchModel() = default;
  explicit HypothesisSearchModel(HypothesisSearchOptions opts)
      : opts_(opts) {}

  [[nodiscard]] std::string name() const override {
    return opts_.use_measured_curve ? "extra-p(measured)" : "extra-p(rf)";
  }

  void fit(const ExtrapolationProblem& problem, Rng& rng) override;

  using ExtrapolationModel::predict;
  [[nodiscard]] std::vector<double> predict(
      std::span<const double> params,
      std::span<const double> measured_small_times) const override;

  /// One fitted hypothesis (exposed for tests and reporting).
  struct Hypothesis {
    double exponent_a = 0.0;
    int exponent_b = 0;
    double c0 = 0.0;
    double c1 = 0.0;
    bool constant_only = false;

    [[nodiscard]] double eval(double p) const;
  };

  /// Hypothesis search on one curve (public for tests).
  [[nodiscard]] Hypothesis search(std::span<const double> curve) const;

 private:
  HypothesisSearchOptions opts_{};
  InterpolationLevel interpolation_;
  std::vector<std::size_t> small_scales_;
  std::vector<std::size_t> target_scales_;
};

}  // namespace hpcp
