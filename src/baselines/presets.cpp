#include "src/baselines/presets.hpp"

#include "src/baselines/direct_models.hpp"
#include "src/baselines/extrap_model.hpp"

namespace hpcp {

std::unique_ptr<TwoLevelModel> make_paper_model() {
  TwoLevelOptions opts;
  opts.display_name = "two-level";
  return std::make_unique<TwoLevelModel>(opts);
}

std::unique_ptr<TwoLevelModel> make_two_level_no_cluster() {
  TwoLevelOptions opts;
  opts.extrapolation.num_clusters = 1;
  opts.display_name = "two-level(k=1)";
  return std::make_unique<TwoLevelModel>(opts);
}

std::unique_ptr<TwoLevelModel> make_two_level_single_task() {
  TwoLevelOptions opts;
  opts.extrapolation.multitask = false;
  opts.display_name = "rf+single-lasso";
  return std::make_unique<TwoLevelModel>(opts);
}

std::unique_ptr<TwoLevelModel> make_two_level_trained_on_truth() {
  TwoLevelOptions opts;
  opts.train_on_predictions = false;
  opts.display_name = "two-level(truth-trained)";
  return std::make_unique<TwoLevelModel>(opts);
}

std::unique_ptr<TwoLevelModel> make_two_level_measured_curve() {
  TwoLevelOptions opts;
  opts.prefer_measured_curve = true;
  opts.display_name = "two-level(measured-curve)";
  return std::make_unique<TwoLevelModel>(opts);
}

std::unique_ptr<TwoLevelModel> make_two_level_k(std::size_t num_clusters) {
  TwoLevelOptions opts;
  opts.extrapolation.num_clusters = num_clusters;
  opts.display_name = "two-level(k=" + std::to_string(num_clusters) + ")";
  return std::make_unique<TwoLevelModel>(opts);
}

std::vector<std::unique_ptr<ExtrapolationModel>> make_baseline_suite() {
  std::vector<std::unique_ptr<ExtrapolationModel>> suite;
  suite.push_back(std::make_unique<DirectForestModel>());
  suite.push_back(std::make_unique<DirectGbmModel>());
  suite.push_back(
      std::make_unique<DirectLinearModel>(DirectLinearModel::Kind::kLasso));
  suite.push_back(
      std::make_unique<DirectLinearModel>(DirectLinearModel::Kind::kRidge));
  suite.push_back(std::make_unique<KnnModel>());
  suite.push_back(std::make_unique<HypothesisSearchModel>());
  return suite;
}

}  // namespace hpcp
