#include "src/baselines/extrap_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.hpp"

namespace hpcp {

namespace {

constexpr double kExponentsA[] = {-1.5,       -1.0, -2.0 / 3.0, -0.5,
                                  -1.0 / 3.0, 1.0 / 3.0, 0.5,   1.0};
constexpr int kExponentsB[] = {0, 1, 2};

/// Least-squares fit of y ≈ c0 + c1·φ over paired samples.
struct TwoTermFit {
  double c0 = 0.0;
  double c1 = 0.0;
  bool ok = false;
};

/// Weighted (relative-error) least squares, weights 1/y²; this matches how
/// Extra-P judges hypotheses (smallest relative residual).
TwoTermFit fit_two_term(std::span<const double> phi,
                        std::span<const double> y) {
  double sw = 0.0, sp = 0.0, sy = 0.0, spp = 0.0, spy = 0.0;
  for (std::size_t i = 0; i < phi.size(); ++i) {
    const double w = 1.0 / std::max(y[i] * y[i], 1e-24);
    sw += w;
    sp += w * phi[i];
    sy += w * y[i];
    spp += w * phi[i] * phi[i];
    spy += w * phi[i] * y[i];
  }
  const double det = sw * spp - sp * sp;
  TwoTermFit fit;
  if (std::abs(det) < 1e-12 * std::max(1.0, sw * spp)) return fit;
  fit.c1 = (sw * spy - sp * sy) / det;
  fit.c0 = (sy - fit.c1 * sp) / sw;
  fit.ok = true;
  return fit;
}

double term(double p, double a, int b) {
  double v = std::pow(p, a);
  if (b > 0) {
    const double lg = std::log2(p);
    for (int i = 0; i < b; ++i) v *= lg;
  }
  return v;
}

}  // namespace

double HypothesisSearchModel::Hypothesis::eval(double p) const {
  if (constant_only) return std::max(c0, 1e-9);
  return std::max(c0 + c1 * term(p, exponent_a, exponent_b), 1e-9);
}

void HypothesisSearchModel::fit(const ExtrapolationProblem& problem,
                                Rng& rng) {
  problem.validate();
  small_scales_ = problem.small_scales;
  target_scales_ = problem.target_scales;
  if (!opts_.use_measured_curve) {
    interpolation_ = InterpolationLevel(opts_.forest);
    interpolation_.fit(problem, rng);
  }
}

HypothesisSearchModel::Hypothesis HypothesisSearchModel::search(
    std::span<const double> curve) const {
  HPCP_REQUIRE(curve.size() == small_scales_.size(),
               "curve width must match small-scale count");
  const std::size_t k = curve.size();
  HPCP_REQUIRE(k >= 2, "hypothesis search needs at least two scales");

  std::vector<double> pvals(k);
  for (std::size_t i = 0; i < k; ++i) {
    pvals[i] = static_cast<double>(small_scales_[i]);
  }

  Hypothesis best;
  best.constant_only = true;
  double c0_sum = 0.0;
  for (const double y : curve) c0_sum += y;
  best.c0 = c0_sum / static_cast<double>(k);
  // Constant hypothesis LLSO error.
  double best_err;
  {
    double mean = 0.0;
    for (std::size_t i = 0; i + 1 < k; ++i) mean += curve[i];
    mean /= static_cast<double>(k - 1);
    const double rel = (mean - curve[k - 1]) / curve[k - 1];
    best_err = rel * rel;
  }

  std::vector<double> phi(k);
  for (const double a : kExponentsA) {
    for (const int b : kExponentsB) {
      for (std::size_t i = 0; i < k; ++i) phi[i] = term(pvals[i], a, b);
      // Leave-largest-scale-out validation.
      const auto cv_fit = fit_two_term({phi.data(), k - 1},
                                       {curve.data(), k - 1});
      if (!cv_fit.ok) continue;
      const double pred = cv_fit.c0 + cv_fit.c1 * phi[k - 1];
      const double rel = (pred - curve[k - 1]) / curve[k - 1];
      const double err = rel * rel;
      if (err < best_err) {
        const auto full_fit = fit_two_term(phi, curve);
        if (!full_fit.ok) continue;
        best_err = err;
        best = Hypothesis{.exponent_a = a,
                          .exponent_b = b,
                          .c0 = full_fit.c0,
                          .c1 = full_fit.c1,
                          .constant_only = false};
      }
    }
  }
  return best;
}

std::vector<double> HypothesisSearchModel::predict(
    std::span<const double> params,
    std::span<const double> measured_small_times) const {
  HPCP_REQUIRE(!small_scales_.empty(), "predict before fit");
  std::vector<double> curve;
  if (opts_.use_measured_curve) {
    HPCP_REQUIRE(!measured_small_times.empty(),
                 "extra-p(measured) needs the configuration's measured "
                 "small-scale runtimes");
    curve.assign(measured_small_times.begin(), measured_small_times.end());
  } else {
    curve = interpolation_.predict_curve(params);
  }
  const Hypothesis hypothesis = search(curve);
  std::vector<double> pred(target_scales_.size());
  for (std::size_t t = 0; t < target_scales_.size(); ++t) {
    pred[t] = hypothesis.eval(static_cast<double>(target_scales_[t]));
  }
  return pred;
}

}  // namespace hpcp
