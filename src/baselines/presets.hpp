#pragma once

#include <memory>
#include <vector>

#include "src/core/two_level_model.hpp"

/// \file presets.hpp
/// Named, pre-configured model instances used throughout the experiments,
/// so every bench compares identically-configured competitors.

namespace hpcp {

/// The paper's model: RF interpolation + clustered multitask-lasso
/// scalability models trained on interpolation predictions.
[[nodiscard]] std::unique_ptr<TwoLevelModel> make_paper_model();

/// Ablation: clustering disabled (one global multitask lasso).
[[nodiscard]] std::unique_ptr<TwoLevelModel> make_two_level_no_cluster();

/// Ablation: no multitask sharing — each curve fitted by an independent
/// single-task lasso.
[[nodiscard]] std::unique_ptr<TwoLevelModel> make_two_level_single_task();

/// Ablation: extrapolation level trained on measured small-scale curves
/// instead of interpolation predictions.
[[nodiscard]] std::unique_ptr<TwoLevelModel> make_two_level_trained_on_truth();

/// Oracle-ish variant: at prediction time, uses the configuration's
/// measured small-scale curve when available (upper bound on level-2
/// accuracy; isolates interpolation error).
[[nodiscard]] std::unique_ptr<TwoLevelModel> make_two_level_measured_curve();

/// Paper model with a fixed cluster count (for the cluster-count ablation).
[[nodiscard]] std::unique_ptr<TwoLevelModel> make_two_level_k(
    std::size_t num_clusters);

/// The comparison suite the headline table uses: direct-rf, direct-gbm,
/// direct-lasso, direct-ridge, knn, extra-p(rf).
[[nodiscard]] std::vector<std::unique_ptr<ExtrapolationModel>>
make_baseline_suite();

}  // namespace hpcp
