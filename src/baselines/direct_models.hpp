#pragma once

#include <string>
#include <vector>

#include "src/core/extrapolation_model.hpp"
#include "src/forest/gbm.hpp"
#include "src/forest/random_forest.hpp"
#include "src/linear/ols.hpp"
#include "src/linear/scaler.hpp"

/// \file direct_models.hpp
/// "Existing ML methods" baselines: one flat regressor over (parameters,
/// scale) rows, trained on the small-scale history and asked to predict at
/// the target scales. These are exactly the models whose i.i.d. assumption
/// the paper says breaks under extrapolation — the random forest in
/// particular can never predict outside the range of its training targets.

namespace hpcp {

/// Expands (params, p) into the flat feature row the direct baselines use:
/// [params…, params_i/p…, p, log2(p), 1/p, sqrt(p)]. The params/p
/// interaction terms give linear models a fair shot at work-per-process
/// behaviour.
class ScaleFeatureExpander {
 public:
  explicit ScaleFeatureExpander(std::size_t num_params);

  [[nodiscard]] std::size_t width() const noexcept;
  [[nodiscard]] std::vector<double> expand(std::span<const double> params,
                                           double nprocs) const;

  /// Expanded design of every (config, scale) pair in the problem, plus the
  /// matching runtime vector.
  struct Expanded {
    Matrix x;
    std::vector<double> y;
  };
  [[nodiscard]] Expanded expand_problem(
      const ExtrapolationProblem& problem) const;

 private:
  std::size_t num_params_;
};

/// Random forest over expanded (params, scale) rows.
class DirectForestModel final : public ExtrapolationModel {
 public:
  DirectForestModel() = default;
  explicit DirectForestModel(ForestOptions opts) : forest_opts_(opts) {}

  [[nodiscard]] std::string name() const override { return "direct-rf"; }
  void fit(const ExtrapolationProblem& problem, Rng& rng) override;
  using ExtrapolationModel::predict;
  [[nodiscard]] std::vector<double> predict(
      std::span<const double> params,
      std::span<const double> measured_small_times) const override;

 private:
  ForestOptions forest_opts_{};
  RandomForest forest_;
  std::unique_ptr<ScaleFeatureExpander> expander_;
  std::vector<std::size_t> target_scales_;
};

/// Linear family over expanded rows.
class DirectLinearModel final : public ExtrapolationModel {
 public:
  enum class Kind { kOls, kRidge, kLasso };

  explicit DirectLinearModel(Kind kind = Kind::kLasso) : kind_(kind) {}

  [[nodiscard]] std::string name() const override;
  void fit(const ExtrapolationProblem& problem, Rng& rng) override;
  using ExtrapolationModel::predict;
  [[nodiscard]] std::vector<double> predict(
      std::span<const double> params,
      std::span<const double> measured_small_times) const override;

 private:
  Kind kind_;
  LinearModel model_;
  std::unique_ptr<ScaleFeatureExpander> expander_;
  std::vector<std::size_t> target_scales_;
};

/// Gradient-boosted trees over expanded rows — like the direct forest,
/// a tree ensemble cannot predict outside its training-target range, so it
/// shares the forest's extrapolation pathology.
class DirectGbmModel final : public ExtrapolationModel {
 public:
  DirectGbmModel() = default;
  explicit DirectGbmModel(GbmOptions opts) : gbm_opts_(opts) {}

  [[nodiscard]] std::string name() const override { return "direct-gbm"; }
  void fit(const ExtrapolationProblem& problem, Rng& rng) override;
  using ExtrapolationModel::predict;
  [[nodiscard]] std::vector<double> predict(
      std::span<const double> params,
      std::span<const double> measured_small_times) const override;

 private:
  GbmOptions gbm_opts_{};
  GradientBoostedTrees gbm_;
  std::unique_ptr<ScaleFeatureExpander> expander_;
  std::vector<std::size_t> target_scales_;
};

/// k-nearest-neighbour regression in standardised (params, log2 p) space.
class KnnModel final : public ExtrapolationModel {
 public:
  explicit KnnModel(std::size_t k = 5) : k_(k) {}

  [[nodiscard]] std::string name() const override { return "knn"; }
  void fit(const ExtrapolationProblem& problem, Rng& rng) override;
  using ExtrapolationModel::predict;
  [[nodiscard]] std::vector<double> predict(
      std::span<const double> params,
      std::span<const double> measured_small_times) const override;

 private:
  [[nodiscard]] std::vector<double> make_point(std::span<const double> params,
                                               double nprocs) const;

  std::size_t k_;
  Matrix points_;  ///< standardised training points
  std::vector<double> times_;
  StandardScaler scaler_;
  std::vector<std::size_t> target_scales_;
};

}  // namespace hpcp
