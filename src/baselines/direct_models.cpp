#include "src/baselines/direct_models.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/check.hpp"
#include "src/linear/cv.hpp"
#include "src/linear/lasso.hpp"

namespace hpcp {

ScaleFeatureExpander::ScaleFeatureExpander(std::size_t num_params)
    : num_params_(num_params) {}

std::size_t ScaleFeatureExpander::width() const noexcept {
  return 2 * num_params_ + 4;
}

std::vector<double> ScaleFeatureExpander::expand(
    std::span<const double> params, double nprocs) const {
  HPCP_REQUIRE(params.size() == num_params_, "parameter width mismatch");
  HPCP_REQUIRE(nprocs >= 1.0, "process count must be at least 1");
  std::vector<double> row;
  row.reserve(width());
  for (const double v : params) row.push_back(v);
  for (const double v : params) row.push_back(v / nprocs);
  row.push_back(nprocs);
  row.push_back(std::log2(nprocs));
  row.push_back(1.0 / nprocs);
  row.push_back(std::sqrt(nprocs));
  return row;
}

ScaleFeatureExpander::Expanded ScaleFeatureExpander::expand_problem(
    const ExtrapolationProblem& problem) const {
  const std::size_t n = problem.num_configs();
  const std::size_t k = problem.small_scales.size();
  Expanded out;
  out.x = Matrix(n * k, width());
  out.y.resize(n * k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t s = 0; s < k; ++s) {
      const auto row =
          expand(problem.train_configs.row(i),
                 static_cast<double>(problem.small_scales[s]));
      out.x.set_row(i * k + s, row);
      out.y[i * k + s] = problem.train_small_times(i, s);
    }
  }
  return out;
}

// --- DirectForestModel ---

void DirectForestModel::fit(const ExtrapolationProblem& problem, Rng& rng) {
  problem.validate();
  target_scales_ = problem.target_scales;
  expander_ = std::make_unique<ScaleFeatureExpander>(problem.num_params());
  const auto data = expander_->expand_problem(problem);
  forest_ = RandomForest(forest_opts_);
  forest_.fit(data.x, data.y, rng);
}

std::vector<double> DirectForestModel::predict(
    std::span<const double> params,
    std::span<const double> /*measured_small_times*/) const {
  HPCP_REQUIRE(expander_ != nullptr, "predict before fit");
  std::vector<double> pred(target_scales_.size());
  for (std::size_t t = 0; t < target_scales_.size(); ++t) {
    const auto row =
        expander_->expand(params, static_cast<double>(target_scales_[t]));
    pred[t] = forest_.predict(row);
  }
  return pred;
}

// --- DirectGbmModel ---

void DirectGbmModel::fit(const ExtrapolationProblem& problem, Rng& rng) {
  problem.validate();
  target_scales_ = problem.target_scales;
  expander_ = std::make_unique<ScaleFeatureExpander>(problem.num_params());
  const auto data = expander_->expand_problem(problem);
  gbm_ = GradientBoostedTrees(gbm_opts_);
  gbm_.fit(data.x, data.y, rng);
}

std::vector<double> DirectGbmModel::predict(
    std::span<const double> params,
    std::span<const double> /*measured_small_times*/) const {
  HPCP_REQUIRE(expander_ != nullptr, "predict before fit");
  std::vector<double> pred(target_scales_.size());
  for (std::size_t t = 0; t < target_scales_.size(); ++t) {
    const auto row =
        expander_->expand(params, static_cast<double>(target_scales_[t]));
    pred[t] = std::max(gbm_.predict(row), 1e-9);
  }
  return pred;
}

// --- DirectLinearModel ---

std::string DirectLinearModel::name() const {
  switch (kind_) {
    case Kind::kOls: return "direct-ols";
    case Kind::kRidge: return "direct-ridge";
    case Kind::kLasso: return "direct-lasso";
  }
  return "direct-linear";
}

void DirectLinearModel::fit(const ExtrapolationProblem& problem, Rng& rng) {
  problem.validate();
  target_scales_ = problem.target_scales;
  expander_ = std::make_unique<ScaleFeatureExpander>(problem.num_params());
  const auto data = expander_->expand_problem(problem);
  switch (kind_) {
    case Kind::kOls:
      model_ = fit_ols(data.x, data.y);
      break;
    case Kind::kRidge:
      model_ = fit_ridge(data.x, data.y, 1e-3);
      break;
    case Kind::kLasso: {
      Rng cv_rng = rng.fork();
      model_ = fit_lasso_cv(data.x, data.y, /*folds=*/5, cv_rng);
      break;
    }
  }
}

std::vector<double> DirectLinearModel::predict(
    std::span<const double> params,
    std::span<const double> /*measured_small_times*/) const {
  HPCP_REQUIRE(expander_ != nullptr, "predict before fit");
  std::vector<double> pred(target_scales_.size());
  for (std::size_t t = 0; t < target_scales_.size(); ++t) {
    const auto row =
        expander_->expand(params, static_cast<double>(target_scales_[t]));
    // Extrapolated linear predictions can cross zero; clamp to positive.
    pred[t] = std::max(model_.predict(row), 1e-9);
  }
  return pred;
}

// --- KnnModel ---

std::vector<double> KnnModel::make_point(std::span<const double> params,
                                         double nprocs) const {
  std::vector<double> point(params.begin(), params.end());
  point.push_back(std::log2(nprocs));
  return point;
}

void KnnModel::fit(const ExtrapolationProblem& problem, Rng& /*rng*/) {
  problem.validate();
  HPCP_REQUIRE(k_ >= 1, "k must be at least 1");
  target_scales_ = problem.target_scales;
  const std::size_t n = problem.num_configs();
  const std::size_t k_scales = problem.small_scales.size();
  Matrix raw(n * k_scales, problem.num_params() + 1);
  times_.resize(n * k_scales);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t s = 0; s < k_scales; ++s) {
      const auto point =
          make_point(problem.train_configs.row(i),
                     static_cast<double>(problem.small_scales[s]));
      raw.set_row(i * k_scales + s, point);
      times_[i * k_scales + s] = problem.train_small_times(i, s);
    }
  }
  scaler_ = StandardScaler::fit(raw);
  points_ = scaler_.transform(raw);
}

std::vector<double> KnnModel::predict(
    std::span<const double> params,
    std::span<const double> /*measured_small_times*/) const {
  HPCP_REQUIRE(!times_.empty(), "predict before fit");
  const std::size_t k = std::min(k_, times_.size());
  std::vector<double> pred(target_scales_.size());
  for (std::size_t t = 0; t < target_scales_.size(); ++t) {
    auto query =
        make_point(params, static_cast<double>(target_scales_[t]));
    scaler_.transform_row(query);
    // Partial selection of the k nearest training points.
    std::vector<std::pair<double, std::size_t>> dist(times_.size());
    for (std::size_t i = 0; i < times_.size(); ++i) {
      const auto row = points_.row(i);
      double d = 0.0;
      for (std::size_t c = 0; c < row.size(); ++c) {
        const double diff = row[c] - query[c];
        d += diff * diff;
      }
      dist[i] = {d, i};
    }
    std::nth_element(dist.begin(),
                     dist.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     dist.end());
    double acc = 0.0;
    for (std::size_t i = 0; i < k; ++i) acc += times_[dist[i].second];
    pred[t] = acc / static_cast<double>(k);
  }
  return pred;
}

}  // namespace hpcp
