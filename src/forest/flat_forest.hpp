#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/forest/forest_isa.hpp"
#include "src/forest/tree.hpp"
#include "src/linear/matrix.hpp"

/// \file flat_forest.hpp
/// Cache-blocked tree ensemble for batched inference.
///
/// FlatForest packs any number of fitted RegressionTrees into one
/// contiguous array of 16-byte nodes (threshold + feature + left-child
/// index; four nodes per cache line) with per-tree root offsets. Nodes
/// are renumbered breadth-first with sibling children adjacent, so
///   - `right == left + 1` always: the traversal step is branchless
///     index arithmetic (`left + (x > threshold)`), and
///   - one tree level occupies one contiguous run, which is exactly the
///     access pattern of the level-synchronous walk below.
/// A leaf stores its prediction in the threshold slot (feature < 0), so
/// the hot loop touches a single array.
///
/// Batched prediction walks *all rows level-by-level*: every pass
/// advances every still-active row one level, so the upper tree levels —
/// shared by all rows — stay cache-resident while the row block streams
/// through. The walk ships as three bitwise-identical kernels selected at
/// runtime per batch (forest_isa.hpp; `HPCP_FOREST_ISA` forces a tier):
/// a scalar reference that sweeps the whole block, and SSE2/AVX2 tiers
/// that keep a compacted active list of (node, row) entries so rows
/// already parked at a leaf are never revisited — on unbalanced
/// unlimited-depth trees that halves the visit count, which is where the
/// measured speedup comes from (see flat_forest.cpp for the kernel
/// anatomy and the rejected alternatives, hardware gathers included).
/// Parity is a contract, not an aspiration: the parity suite and bench
/// compare scalar vs SIMD predictions bit for bit, NaN thresholds
/// included.
///
/// RandomForest and GradientBoostedTrees build a FlatForest after fitting
/// and route predict / predict_stats / OOB / staged prediction through it;
/// the node-based trees remain the canonical fitted representation (and the
/// serialization format).

namespace hpcp {

class FlatForest {
 public:
  /// One packed traversal node. Internal: feature >= 0, `threshold` is the
  /// split, children live at `left` and `left + 1` (rows with
  /// x[feature] <= threshold go left; a NaN threshold or NaN feature value
  /// goes right, matching IEEE `<=`). Leaf: feature < 0, `threshold`
  /// holds the prediction, `left` is unused (-1).
  struct alignas(16) Node {
    double threshold = 0.0;
    std::int32_t feature = -1;
    std::int32_t left = -1;
  };
  static_assert(sizeof(Node) == 16, "traversal node must pack to 16 bytes");

  FlatForest() = default;

  /// Flatten an ensemble; all trees must be fitted.
  [[nodiscard]] static FlatForest build(std::span<const RegressionTree> trees);

  /// Builds directly from raw per-tree node lists. Test/fuzz entry point
  /// for shapes a real fit cannot produce (NaN thresholds, degenerate
  /// one-leaf trees); semantics identical to build().
  [[nodiscard]] static FlatForest from_nodes(
      std::span<const std::vector<RegressionTree::Node>> trees);

  [[nodiscard]] std::size_t num_trees() const noexcept {
    return roots_.empty() ? 0 : roots_.size() - 1;
  }
  [[nodiscard]] bool empty() const noexcept { return num_trees() == 0; }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return nodes_.size();
  }
  /// Minimum feature-vector width accepted by predict calls.
  [[nodiscard]] std::size_t min_feature_width() const noexcept {
    return min_width_;
  }

  /// Mean per-tree prediction for every row of x (the ensemble average).
  [[nodiscard]] std::vector<double> predict_mean(const Matrix& x) const;

  /// Per-row sum and sum-of-squares of the per-tree predictions, in tree
  /// order (for ensemble-spread statistics). Both spans must have x.rows()
  /// elements.
  void predict_moments(const Matrix& x, std::span<double> sum,
                       std::span<double> sum_sq) const;

  /// Scalar path: sum and sum-of-squares over trees for one feature vector.
  void predict_row_moments(std::span<const double> features, double& sum,
                           double& sum_sq) const;

  /// Prediction of tree t for one feature vector.
  [[nodiscard]] double predict_tree_row(std::size_t t,
                                        std::span<const double> features) const;

  /// Batched prediction of tree t over a row subset: out[k] = tree t's
  /// prediction for x.row(rows[k]). Used by the out-of-bag pass.
  void predict_tree_rows(std::size_t t, const Matrix& x,
                         std::span<const std::size_t> rows,
                         std::span<double> out) const;

  /// acc[r] += scale * (tree t's prediction for row r), for every row of x.
  /// Used by GBM's staged residual updates and staged prediction.
  void accumulate_tree(std::size_t t, const Matrix& x, double scale,
                       std::span<double> acc) const;

 private:
  void check_width(std::size_t width) const;
  void append_tree(std::span<const RegressionTree::Node> nodes);

  /// Walks rows through tree t, leaving every cur[k] at its leaf; the
  /// kernels seed the traversal from the tree root themselves, so cur
  /// needs no prefill by the caller. Row k's features sit at
  /// xd + xbase[k] when an offset table is given; a null xbase means the
  /// rows are contiguous (offset k * d) and is only valid for the vector
  /// tiers — the scalar reference always takes the table
  /// (kernel_needs_xbase in flat_forest.cpp). `act` is the vector tiers'
  /// active-list scratch (>= n entries, reusable across trees); it may
  /// be null for the scalar tier.
  void walk_tree(std::size_t t, const double* xd,
                 const std::int32_t* xbase, std::int32_t d,
                 std::int32_t* cur, std::size_t n, ForestIsa isa,
                 std::int64_t* act) const;

  std::vector<Node> nodes_;
  std::vector<std::int32_t> roots_;  ///< tree t's nodes: [roots_[t], roots_[t+1])
  std::size_t min_width_ = 0;
};

}  // namespace hpcp
