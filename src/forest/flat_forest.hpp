#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/forest/tree.hpp"
#include "src/linear/matrix.hpp"

/// \file flat_forest.hpp
/// Structure-of-arrays tree ensemble for batched inference.
///
/// FlatForest packs any number of fitted RegressionTrees into five
/// contiguous parallel arrays (feature / threshold / left / right / value)
/// with per-tree root offsets. Batched prediction walks *all rows
/// level-by-level*: every pass advances every still-active row one level,
/// so the upper tree levels — shared by all rows — stay cache-resident
/// while the row block streams through, and there is no per-row function
/// call or per-node validity check on the hot path (the feature width is
/// checked once per call instead).
///
/// RandomForest and GradientBoostedTrees build a FlatForest after fitting
/// and route predict / predict_stats / OOB / staged prediction through it;
/// the node-based trees remain the canonical fitted representation (and the
/// serialization format).

namespace hpcp {

class FlatForest {
 public:
  FlatForest() = default;

  /// Flatten an ensemble; all trees must be fitted.
  [[nodiscard]] static FlatForest build(std::span<const RegressionTree> trees);

  [[nodiscard]] std::size_t num_trees() const noexcept {
    return roots_.empty() ? 0 : roots_.size() - 1;
  }
  [[nodiscard]] bool empty() const noexcept { return num_trees() == 0; }
  [[nodiscard]] std::size_t num_nodes() const noexcept { return value_.size(); }
  /// Minimum feature-vector width accepted by predict calls.
  [[nodiscard]] std::size_t min_feature_width() const noexcept {
    return min_width_;
  }

  /// Mean per-tree prediction for every row of x (the ensemble average).
  [[nodiscard]] std::vector<double> predict_mean(const Matrix& x) const;

  /// Per-row sum and sum-of-squares of the per-tree predictions, in tree
  /// order (for ensemble-spread statistics). Both spans must have x.rows()
  /// elements.
  void predict_moments(const Matrix& x, std::span<double> sum,
                       std::span<double> sum_sq) const;

  /// Scalar path: sum and sum-of-squares over trees for one feature vector.
  void predict_row_moments(std::span<const double> features, double& sum,
                           double& sum_sq) const;

  /// Prediction of tree t for one feature vector.
  [[nodiscard]] double predict_tree_row(std::size_t t,
                                        std::span<const double> features) const;

  /// Batched prediction of tree t over a row subset: out[k] = tree t's
  /// prediction for x.row(rows[k]). Used by the out-of-bag pass.
  void predict_tree_rows(std::size_t t, const Matrix& x,
                         std::span<const std::size_t> rows,
                         std::span<double> out) const;

  /// acc[r] += scale * (tree t's prediction for row r), for every row of x.
  /// Used by GBM's staged residual updates and staged prediction.
  void accumulate_tree(std::size_t t, const Matrix& x, double scale,
                       std::span<double> acc) const;

 private:
  void check_width(std::size_t width) const;

  std::vector<std::int32_t> feature_;
  std::vector<double> threshold_;
  std::vector<std::int32_t> left_;
  std::vector<std::int32_t> right_;
  std::vector<double> value_;
  std::vector<std::int32_t> roots_;  ///< tree t's nodes: [roots_[t], roots_[t+1])
  std::size_t min_width_ = 0;
};

}  // namespace hpcp
