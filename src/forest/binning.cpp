#include "src/forest/binning.hpp"

#include <algorithm>

#include "src/common/check.hpp"

namespace hpcp {

BinnedMatrix BinnedMatrix::build(const Matrix& x, std::size_t max_bins) {
  HPCP_REQUIRE(max_bins >= 2 && max_bins <= 65536,
               "max_bins must be in [2, 65536]");
  HPCP_REQUIRE(!x.empty(), "cannot bin an empty matrix");

  BinnedMatrix out;
  out.rows_ = x.rows();
  out.cols_ = x.cols();
  out.max_bins_ = max_bins;
  out.boundaries_.resize(x.cols());
  out.codes_.resize(x.rows() * x.cols());

  std::vector<double> sorted(x.rows());
  for (std::size_t f = 0; f < x.cols(); ++f) {
    for (std::size_t r = 0; r < x.rows(); ++r) sorted[r] = x(r, f);
    std::sort(sorted.begin(), sorted.end());

    std::size_t distinct = 1;
    for (std::size_t r = 1; r < sorted.size(); ++r) {
      distinct += sorted[r] != sorted[r - 1] ? 1 : 0;
    }

    auto& bounds = out.boundaries_[f];
    if (distinct <= max_bins) {
      // One bin per distinct value: boundaries at every adjacent-distinct
      // midpoint, exactly the exact scan's candidate thresholds.
      bounds.reserve(distinct - 1);
      for (std::size_t r = 1; r < sorted.size(); ++r) {
        if (sorted[r] != sorted[r - 1]) {
          bounds.push_back(0.5 * (sorted[r - 1] + sorted[r]));
        }
      }
    } else {
      // Evenly spaced quantile cuts, each advanced to the next distinct
      // adjacent pair so a boundary never lands inside a run of duplicates.
      bounds.reserve(max_bins - 1);
      const std::size_t n = sorted.size();
      for (std::size_t k = 1; k < max_bins; ++k) {
        std::size_t i = n * k / max_bins;
        if (i == 0) i = 1;
        while (i < n && sorted[i] == sorted[i - 1]) ++i;
        if (i >= n) break;
        const double cut = 0.5 * (sorted[i - 1] + sorted[i]);
        if (bounds.empty() || cut > bounds.back()) bounds.push_back(cut);
      }
    }

    // code(v) = #{j : bounds[j] < v} = index of first boundary >= v.
    std::uint16_t* col = out.codes_.data() + f * out.rows_;
    for (std::size_t r = 0; r < x.rows(); ++r) {
      const auto it =
          std::lower_bound(bounds.begin(), bounds.end(), x(r, f));
      col[r] = static_cast<std::uint16_t>(it - bounds.begin());
    }
  }
  return out;
}

}  // namespace hpcp
