#include "src/forest/flat_forest.hpp"

#include <algorithm>

#include "src/common/check.hpp"

namespace hpcp {

FlatForest FlatForest::build(std::span<const RegressionTree> trees) {
  FlatForest flat;
  std::size_t total = 0;
  for (const auto& tree : trees) {
    HPCP_REQUIRE(tree.fitted(), "cannot flatten an unfitted tree");
    total += tree.num_nodes();
  }
  flat.feature_.reserve(total);
  flat.threshold_.reserve(total);
  flat.left_.reserve(total);
  flat.right_.reserve(total);
  flat.value_.reserve(total);
  flat.roots_.reserve(trees.size() + 1);
  flat.roots_.push_back(0);
  for (const auto& tree : trees) {
    const auto base = static_cast<std::int32_t>(flat.value_.size());
    for (const auto& node : tree.nodes()) {
      flat.feature_.push_back(node.feature);
      flat.threshold_.push_back(node.threshold);
      flat.left_.push_back(node.left < 0 ? -1 : node.left + base);
      flat.right_.push_back(node.right < 0 ? -1 : node.right + base);
      flat.value_.push_back(node.value);
      if (node.left >= 0) {
        flat.min_width_ = std::max(
            flat.min_width_, static_cast<std::size_t>(node.feature) + 1);
      }
    }
    flat.roots_.push_back(static_cast<std::int32_t>(flat.value_.size()));
  }
  return flat;
}

void FlatForest::check_width(std::size_t width) const {
  HPCP_REQUIRE(width >= min_width_, "feature width mismatch");
}

std::vector<double> FlatForest::predict_mean(const Matrix& x) const {
  HPCP_REQUIRE(!empty(), "predict before build");
  check_width(x.cols());
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const double* xd = x.data().data();
  std::vector<double> acc(n, 0.0);
  std::vector<std::int32_t> cur(n);
  for (std::size_t t = 0; t < num_trees(); ++t) {
    std::fill(cur.begin(), cur.end(), roots_[t]);
    // Level-synchronous walk: each pass advances every still-internal row
    // one level; rows already at a leaf stay put.
    for (bool active = true; active;) {
      active = false;
      for (std::size_t r = 0; r < n; ++r) {
        const std::int32_t nd = cur[r];
        const std::int32_t l = left_[nd];
        if (l < 0) continue;
        cur[r] = xd[r * d + static_cast<std::size_t>(feature_[nd])] <=
                         threshold_[nd]
                     ? l
                     : right_[nd];
        active = true;
      }
    }
    for (std::size_t r = 0; r < n; ++r) acc[r] += value_[cur[r]];
  }
  // Divide (don't multiply by a reciprocal): bitwise identical to the
  // per-row reference walk, which the parity tests require.
  const auto trees = static_cast<double>(num_trees());
  for (auto& v : acc) v /= trees;
  return acc;
}

void FlatForest::predict_moments(const Matrix& x, std::span<double> sum,
                                 std::span<double> sum_sq) const {
  HPCP_REQUIRE(!empty(), "predict before build");
  check_width(x.cols());
  HPCP_REQUIRE(sum.size() == x.rows() && sum_sq.size() == x.rows(),
               "moment spans must match row count");
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const double* xd = x.data().data();
  std::fill(sum.begin(), sum.end(), 0.0);
  std::fill(sum_sq.begin(), sum_sq.end(), 0.0);
  std::vector<std::int32_t> cur(n);
  for (std::size_t t = 0; t < num_trees(); ++t) {
    std::fill(cur.begin(), cur.end(), roots_[t]);
    for (bool active = true; active;) {
      active = false;
      for (std::size_t r = 0; r < n; ++r) {
        const std::int32_t nd = cur[r];
        const std::int32_t l = left_[nd];
        if (l < 0) continue;
        cur[r] = xd[r * d + static_cast<std::size_t>(feature_[nd])] <=
                         threshold_[nd]
                     ? l
                     : right_[nd];
        active = true;
      }
    }
    for (std::size_t r = 0; r < n; ++r) {
      const double p = value_[cur[r]];
      sum[r] += p;
      sum_sq[r] += p * p;
    }
  }
}

void FlatForest::predict_row_moments(std::span<const double> features,
                                     double& sum, double& sum_sq) const {
  HPCP_REQUIRE(!empty(), "predict before build");
  check_width(features.size());
  sum = 0.0;
  sum_sq = 0.0;
  for (std::size_t t = 0; t < num_trees(); ++t) {
    std::int32_t nd = roots_[t];
    while (left_[nd] >= 0) {
      nd = features[static_cast<std::size_t>(feature_[nd])] <= threshold_[nd]
               ? left_[nd]
               : right_[nd];
    }
    const double p = value_[nd];
    sum += p;
    sum_sq += p * p;
  }
}

double FlatForest::predict_tree_row(std::size_t t,
                                    std::span<const double> features) const {
  HPCP_REQUIRE(t < num_trees(), "tree index out of range");
  check_width(features.size());
  std::int32_t nd = roots_[t];
  while (left_[nd] >= 0) {
    nd = features[static_cast<std::size_t>(feature_[nd])] <= threshold_[nd]
             ? left_[nd]
             : right_[nd];
  }
  return value_[nd];
}

void FlatForest::predict_tree_rows(std::size_t t, const Matrix& x,
                                   std::span<const std::size_t> rows,
                                   std::span<double> out) const {
  HPCP_REQUIRE(t < num_trees(), "tree index out of range");
  check_width(x.cols());
  HPCP_REQUIRE(out.size() == rows.size(), "output span must match row list");
  const std::size_t d = x.cols();
  const double* xd = x.data().data();
  std::vector<std::int32_t> cur(rows.size(), roots_[t]);
  for (bool active = true; active;) {
    active = false;
    for (std::size_t k = 0; k < rows.size(); ++k) {
      const std::int32_t nd = cur[k];
      const std::int32_t l = left_[nd];
      if (l < 0) continue;
      cur[k] = xd[rows[k] * d + static_cast<std::size_t>(feature_[nd])] <=
                       threshold_[nd]
                   ? l
                   : right_[nd];
      active = true;
    }
  }
  for (std::size_t k = 0; k < rows.size(); ++k) out[k] = value_[cur[k]];
}

void FlatForest::accumulate_tree(std::size_t t, const Matrix& x, double scale,
                                 std::span<double> acc) const {
  HPCP_REQUIRE(t < num_trees(), "tree index out of range");
  check_width(x.cols());
  HPCP_REQUIRE(acc.size() == x.rows(), "accumulator must match row count");
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const double* xd = x.data().data();
  std::vector<std::int32_t> cur(n, roots_[t]);
  for (bool active = true; active;) {
    active = false;
    for (std::size_t r = 0; r < n; ++r) {
      const std::int32_t nd = cur[r];
      const std::int32_t l = left_[nd];
      if (l < 0) continue;
      cur[r] = xd[r * d + static_cast<std::size_t>(feature_[nd])] <=
                       threshold_[nd]
                   ? l
                   : right_[nd];
      active = true;
    }
  }
  for (std::size_t r = 0; r < n; ++r) acc[r] += scale * value_[cur[r]];
}

}  // namespace hpcp
