#include "src/forest/flat_forest.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "src/common/check.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace hpcp {

namespace {

/// Advances one row to its leaf. The traversal step is shared verbatim by
/// every kernel: go left iff x <= threshold, where a NaN threshold or NaN
/// feature value compares false and sends the row right.
inline std::int32_t walk_one(const FlatForest::Node* nodes, std::int32_t nd,
                             const double* xd, std::int32_t xbase) {
  while (nodes[nd].feature >= 0) {
    const FlatForest::Node& node = nodes[nd];
    nd = node.left + (xd[xbase + node.feature] <= node.threshold ? 0 : 1);
  }
  return nd;
}

/// Reference kernel: level-synchronous over the whole row block. Upper
/// tree levels stay cache-resident while the rows stream through.
void walk_scalar(const FlatForest::Node* nodes, const double* xd,
                 const std::int32_t* xbase, std::int32_t* cur,
                 std::size_t n) {
  for (bool active = true; active;) {
    active = false;
    for (std::size_t k = 0; k < n; ++k) {
      const FlatForest::Node& nd = nodes[cur[k]];
      if (nd.feature < 0) continue;
      cur[k] = nd.left + (xd[xbase[k] + nd.feature] <= nd.threshold ? 0 : 1);
      active = true;
    }
  }
}

#if defined(__x86_64__) || defined(__i386__)

/// Vector tiers: active-list compaction. The scalar reference revisits
/// every parked row on every sweep, so an unbalanced tree (unlimited
/// depth — the production configuration) costs n * max_depth row visits
/// even though only n * mean_depth of them do work; on measured fitted
/// forests max_depth is roughly twice mean_depth, i.e. half the scalar
/// sweeps' visits are wasted. The compaction walk keeps a packed list of
/// still-active (node, row) entries — node index in the high 32 bits,
/// row in the low 32 — steps every entry one level per sweep, and writes
/// survivors back densely, so parked rows are never touched again and
/// each sweep is a straight streaming pass with branch-free bookkeeping.
/// The eager survivor test (an entry is appended only while its next
/// node is internal) keeps the step itself clamp-free: entries are
/// never leaves.
///
/// The compare runs two rows at a time through _mm_cmpnle_pd, whose
/// predicate is exactly the scalar `!(x <= thr)` including the NaN
/// case (unordered compares true, so NaN features and NaN thresholds
/// send the row right) — that is what keeps the parity contract bitwise.
/// Wider compares were measured and rejected: 4-wide _mm256_cmp_pd needs
/// lane-crossing vector builds that cost more than the compare saves,
/// and the AVX2 hardware-gather formulation loses outright because each
/// step's gather depends on the previous level's result — a dependent
/// gather chain serialises at memory latency while independent scalar
/// loads overlap. The walk is memory-level-parallelism bound, so the
/// four-entry unroll exists to keep many independent node loads in
/// flight, not to fill vector lanes.
///
/// Row offsets: the batched predict paths walk contiguous row blocks, so
/// the kernels fold the offset multiply into the step (kContiguous,
/// xb = row * d) instead of loading a precomputed table; the out-of-bag
/// path walks a row subset and passes its offset table explicitly.
template <bool kContiguous>
__attribute__((always_inline)) inline void walk_compact(
    const FlatForest::Node* nodes, const double* xd,
    const std::int32_t* xbase, std::int32_t d, std::int32_t root,
    std::int32_t* cur, std::size_t n, std::int64_t* act) {
  // Every row starts at the root, so the initial active list is either
  // everything (internal root) or nothing (single-leaf tree, where cur
  // must still report the root). Rows that leave the list have had their
  // final leaf written to cur by the step below, so no caller prefill of
  // cur is needed — batched callers reuse one scratch list across trees
  // instead of refilling per tree.
  if (nodes[root].feature < 0) {
    std::fill(cur, cur + n, root);
    return;
  }
  std::size_t m = n;
  for (std::size_t k = 0; k < n; ++k) {
    act[k] = static_cast<std::int64_t>(root) << 32 |
             static_cast<std::uint32_t>(k);
  }
  while (m) {
    std::size_t w = 0;
    std::size_t i = 0;
    for (; i + 4 <= m; i += 4) {
      const std::int64_t e0 = act[i];
      const std::int64_t e1 = act[i + 1];
      const std::int64_t e2 = act[i + 2];
      const std::int64_t e3 = act[i + 3];
      const auto k0 = static_cast<std::int32_t>(e0);
      const auto k1 = static_cast<std::int32_t>(e1);
      const auto k2 = static_cast<std::int32_t>(e2);
      const auto k3 = static_cast<std::int32_t>(e3);
      const auto c0 = static_cast<std::int32_t>(e0 >> 32);
      const auto c1 = static_cast<std::int32_t>(e1 >> 32);
      const auto c2 = static_cast<std::int32_t>(e2 >> 32);
      const auto c3 = static_cast<std::int32_t>(e3 >> 32);
      const FlatForest::Node& n0 = nodes[c0];
      const FlatForest::Node& n1 = nodes[c1];
      const FlatForest::Node& n2 = nodes[c2];
      const FlatForest::Node& n3 = nodes[c3];
      const std::int32_t xb0 = kContiguous ? k0 * d : xbase[k0];
      const std::int32_t xb1 = kContiguous ? k1 * d : xbase[k1];
      const std::int32_t xb2 = kContiguous ? k2 * d : xbase[k2];
      const std::int32_t xb3 = kContiguous ? k3 * d : xbase[k3];
      const __m128d vx01 =
          _mm_set_pd(xd[xb1 + n1.feature], xd[xb0 + n0.feature]);
      const __m128d vt01 = _mm_set_pd(n1.threshold, n0.threshold);
      const __m128d vx23 =
          _mm_set_pd(xd[xb3 + n3.feature], xd[xb2 + n2.feature]);
      const __m128d vt23 = _mm_set_pd(n3.threshold, n2.threshold);
      const int g01 = _mm_movemask_pd(_mm_cmpnle_pd(vx01, vt01));
      const int g23 = _mm_movemask_pd(_mm_cmpnle_pd(vx23, vt23));
      const std::int32_t x0 = n0.left + (g01 & 1);
      const std::int32_t x1 = n1.left + ((g01 >> 1) & 1);
      const std::int32_t x2 = n2.left + (g23 & 1);
      const std::int32_t x3 = n3.left + ((g23 >> 1) & 1);
      cur[k0] = x0;
      cur[k1] = x1;
      cur[k2] = x2;
      cur[k3] = x3;
      act[w] = static_cast<std::int64_t>(x0) << 32 |
               static_cast<std::uint32_t>(k0);
      w += nodes[x0].feature >= 0 ? 1 : 0;
      act[w] = static_cast<std::int64_t>(x1) << 32 |
               static_cast<std::uint32_t>(k1);
      w += nodes[x1].feature >= 0 ? 1 : 0;
      act[w] = static_cast<std::int64_t>(x2) << 32 |
               static_cast<std::uint32_t>(k2);
      w += nodes[x2].feature >= 0 ? 1 : 0;
      act[w] = static_cast<std::int64_t>(x3) << 32 |
               static_cast<std::uint32_t>(k3);
      w += nodes[x3].feature >= 0 ? 1 : 0;
    }
    for (; i < m; ++i) {
      const std::int64_t e = act[i];
      const auto k = static_cast<std::int32_t>(e);
      const auto c = static_cast<std::int32_t>(e >> 32);
      const FlatForest::Node& nd = nodes[c];
      const std::int32_t xb = kContiguous ? k * d : xbase[k];
      const std::int32_t nxt =
          nd.left + (xd[xb + nd.feature] <= nd.threshold ? 0 : 1);
      cur[k] = nxt;
      act[w] = static_cast<std::int64_t>(nxt) << 32 |
               static_cast<std::uint32_t>(k);
      w += nodes[nxt].feature >= 0 ? 1 : 0;
    }
    m = w;
  }
}

/// Baseline x86-64 tier (SSE2 is architectural there).
__attribute__((target("sse2"))) void walk_sse2(
    const FlatForest::Node* nodes, const double* xd,
    const std::int32_t* xbase, std::int32_t d, std::int32_t root,
    std::int32_t* cur, std::size_t n, std::int64_t* act) {
  if (xbase == nullptr) {
    walk_compact<true>(nodes, xd, nullptr, d, root, cur, n, act);
  } else {
    walk_compact<false>(nodes, xd, xbase, d, root, cur, n, act);
  }
}

/// AVX2 tier: the same compaction walk force-inlined under an AVX2
/// target, so the compare/bookkeeping lower to VEX three-operand forms.
/// It shares the 128-bit pairwise compare deliberately — see the
/// walk_compact comment for why wider formulations measured slower.
__attribute__((target("avx2"))) void walk_avx2(
    const FlatForest::Node* nodes, const double* xd,
    const std::int32_t* xbase, std::int32_t d, std::int32_t root,
    std::int32_t* cur, std::size_t n, std::int64_t* act) {
  if (xbase == nullptr) {
    walk_compact<true>(nodes, xd, nullptr, d, root, cur, n, act);
  } else {
    walk_compact<false>(nodes, xd, xbase, d, root, cur, n, act);
  }
}

#endif  // x86

/// Row offsets as int32 indices; the size guard in the predict entry
/// points bounds rows*cols, so the cast cannot truncate.
std::vector<std::int32_t> make_xbase(std::size_t n, std::size_t d) {
  std::vector<std::int32_t> xbase(n);
  for (std::size_t r = 0; r < n; ++r) {
    xbase[r] = static_cast<std::int32_t>(r * d);
  }
  return xbase;
}

/// The scalar reference takes a precomputed offset table; the vector
/// tiers compute contiguous offsets themselves (walk_compact's
/// kContiguous path), so batched callers skip building the table when a
/// vector tier resolved.
bool kernel_needs_xbase(ForestIsa isa) {
#if defined(__x86_64__) || defined(__i386__)
  return isa == ForestIsa::kScalar;
#else
  (void)isa;
  return true;
#endif
}

}  // namespace

void FlatForest::append_tree(std::span<const RegressionTree::Node> tree) {
  // Renumber breadth-first with sibling children adjacent: right ==
  // left + 1 (the branchless step relies on it) and each level is one
  // contiguous run. The queue pairs (source index, packed index); both
  // child slots are claimed when the parent is written.
  const auto base = static_cast<std::int32_t>(nodes_.size());
  const auto size = static_cast<std::int32_t>(tree.size());
  nodes_.resize(nodes_.size() + tree.size());
  std::vector<std::pair<std::int32_t, std::int32_t>> queue;
  queue.reserve(tree.size());
  queue.emplace_back(0, base);
  std::int32_t next = base + 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const auto [src, dst] = queue[head];
    const RegressionTree::Node& node = tree[static_cast<std::size_t>(src)];
    Node packed;
    if (node.left < 0) {
      packed.threshold = node.value;  // leaf: prediction rides here
    } else {
      // Corrupt archives reach this path via load(); reject malformed
      // links (out-of-range children, shared subtrees / cycles that
      // would claim more slots than the tree has nodes) instead of
      // scribbling past the packed array.
      HPCP_REQUIRE(node.left < size && node.right >= 0 &&
                       node.right < size && node.feature >= 0,
                   "malformed tree: child link out of range");
      HPCP_REQUIRE(next + 2 <= base + size,
                   "malformed tree: node linked more than once");
      packed.threshold = node.threshold;
      packed.feature = node.feature;
      packed.left = next;
      queue.emplace_back(node.left, next);
      queue.emplace_back(node.right, next + 1);
      next += 2;
      min_width_ = std::max(min_width_,
                            static_cast<std::size_t>(node.feature) + 1);
    }
    nodes_[static_cast<std::size_t>(dst)] = packed;
  }
  roots_.push_back(static_cast<std::int32_t>(nodes_.size()));
}

FlatForest FlatForest::build(std::span<const RegressionTree> trees) {
  FlatForest flat;
  std::size_t total = 0;
  for (const auto& tree : trees) {
    HPCP_REQUIRE(tree.fitted(), "cannot flatten an unfitted tree");
    total += tree.num_nodes();
  }
  HPCP_REQUIRE(total < (std::numeric_limits<std::int32_t>::max)() / 16,
               "ensemble too large for 32-bit traversal indices");
  flat.nodes_.reserve(total);
  flat.roots_.reserve(trees.size() + 1);
  flat.roots_.push_back(0);
  for (const auto& tree : trees) flat.append_tree(tree.nodes());
  return flat;
}

FlatForest FlatForest::from_nodes(
    std::span<const std::vector<RegressionTree::Node>> trees) {
  FlatForest flat;
  std::size_t total = 0;
  for (const auto& tree : trees) {
    HPCP_REQUIRE(!tree.empty(), "cannot flatten an empty node list");
    total += tree.size();
  }
  HPCP_REQUIRE(total < (std::numeric_limits<std::int32_t>::max)() / 16,
               "ensemble too large for 32-bit traversal indices");
  flat.nodes_.reserve(total);
  flat.roots_.reserve(trees.size() + 1);
  flat.roots_.push_back(0);
  for (const auto& tree : trees) flat.append_tree(tree);
  return flat;
}

void FlatForest::check_width(std::size_t width) const {
  HPCP_REQUIRE(width >= min_width_, "feature width mismatch");
}

void FlatForest::walk_tree(std::size_t t, const double* xd,
                           const std::int32_t* xbase, std::int32_t d,
                           std::int32_t* cur, std::size_t n, ForestIsa isa,
                           std::int64_t* act) const {
  const Node* nodes = nodes_.data();
  const std::int32_t root = roots_[t];
  switch (isa) {
#if defined(__x86_64__) || defined(__i386__)
    case ForestIsa::kAvx2:
      walk_avx2(nodes, xd, xbase, d, root, cur, n, act);
      return;
    case ForestIsa::kSse2:
      walk_sse2(nodes, xd, xbase, d, root, cur, n, act);
      return;
#else
    case ForestIsa::kAvx2:
    case ForestIsa::kSse2:
#endif
    case ForestIsa::kScalar:
      break;
  }
  // kernel_needs_xbase guarantees xbase is populated on this path; the
  // reference sweep revisits parked rows, so it needs every cur slot
  // seeded with the root up front.
  std::fill(cur, cur + n, root);
  walk_scalar(nodes, xd, xbase, cur, n);
  (void)d;
  (void)act;
}

std::vector<double> FlatForest::predict_mean(const Matrix& x) const {
  HPCP_REQUIRE(!empty(), "predict before build");
  check_width(x.cols());
  HPCP_REQUIRE(x.data().size() <=
                   static_cast<std::size_t>(
                       (std::numeric_limits<std::int32_t>::max)()),
               "matrix too large for flat traversal");
  const std::size_t n = x.rows();
  const auto d = static_cast<std::int32_t>(x.cols());
  const double* xd = x.data().data();
  const ForestIsa isa = resolve_forest_isa();
  std::vector<std::int32_t> xbase;
  if (kernel_needs_xbase(isa)) xbase = make_xbase(n, x.cols());
  const std::int32_t* xb = xbase.empty() ? nullptr : xbase.data();
  // One active-list scratch buffer shared by every tree's walk; the
  // vector kernels seed it (and cur) themselves, so there is no per-tree
  // refill here.
  std::vector<std::int64_t> act(kernel_needs_xbase(isa) ? 0 : n);
  std::int64_t* ap = act.empty() ? nullptr : act.data();
  std::vector<double> acc(n, 0.0);
  std::vector<std::int32_t> cur(n);
  for (std::size_t t = 0; t < num_trees(); ++t) {
    walk_tree(t, xd, xb, d, cur.data(), n, isa, ap);
    for (std::size_t r = 0; r < n; ++r) acc[r] += nodes_[cur[r]].threshold;
  }
  // Divide (don't multiply by a reciprocal): bitwise identical to the
  // per-row reference walk, which the parity tests require.
  const auto trees = static_cast<double>(num_trees());
  for (auto& v : acc) v /= trees;
  return acc;
}

void FlatForest::predict_moments(const Matrix& x, std::span<double> sum,
                                 std::span<double> sum_sq) const {
  HPCP_REQUIRE(!empty(), "predict before build");
  check_width(x.cols());
  HPCP_REQUIRE(sum.size() == x.rows() && sum_sq.size() == x.rows(),
               "moment spans must match row count");
  HPCP_REQUIRE(x.data().size() <=
                   static_cast<std::size_t>(
                       (std::numeric_limits<std::int32_t>::max)()),
               "matrix too large for flat traversal");
  const std::size_t n = x.rows();
  const auto d = static_cast<std::int32_t>(x.cols());
  const double* xd = x.data().data();
  const ForestIsa isa = resolve_forest_isa();
  std::vector<std::int32_t> xbase;
  if (kernel_needs_xbase(isa)) xbase = make_xbase(n, x.cols());
  const std::int32_t* xb = xbase.empty() ? nullptr : xbase.data();
  std::fill(sum.begin(), sum.end(), 0.0);
  std::fill(sum_sq.begin(), sum_sq.end(), 0.0);
  std::vector<std::int64_t> act(kernel_needs_xbase(isa) ? 0 : n);
  std::int64_t* ap = act.empty() ? nullptr : act.data();
  std::vector<std::int32_t> cur(n);
  for (std::size_t t = 0; t < num_trees(); ++t) {
    walk_tree(t, xd, xb, d, cur.data(), n, isa, ap);
    for (std::size_t r = 0; r < n; ++r) {
      const double p = nodes_[cur[r]].threshold;
      sum[r] += p;
      sum_sq[r] += p * p;
    }
  }
}

void FlatForest::predict_row_moments(std::span<const double> features,
                                     double& sum, double& sum_sq) const {
  HPCP_REQUIRE(!empty(), "predict before build");
  check_width(features.size());
  sum = 0.0;
  sum_sq = 0.0;
  for (std::size_t t = 0; t < num_trees(); ++t) {
    const std::int32_t nd =
        walk_one(nodes_.data(), roots_[t], features.data(), 0);
    const double p = nodes_[static_cast<std::size_t>(nd)].threshold;
    sum += p;
    sum_sq += p * p;
  }
}

double FlatForest::predict_tree_row(std::size_t t,
                                    std::span<const double> features) const {
  HPCP_REQUIRE(t < num_trees(), "tree index out of range");
  check_width(features.size());
  const std::int32_t nd =
      walk_one(nodes_.data(), roots_[t], features.data(), 0);
  return nodes_[static_cast<std::size_t>(nd)].threshold;
}

void FlatForest::predict_tree_rows(std::size_t t, const Matrix& x,
                                   std::span<const std::size_t> rows,
                                   std::span<double> out) const {
  HPCP_REQUIRE(t < num_trees(), "tree index out of range");
  check_width(x.cols());
  HPCP_REQUIRE(out.size() == rows.size(), "output span must match row list");
  HPCP_REQUIRE(x.data().size() <=
                   static_cast<std::size_t>(
                       (std::numeric_limits<std::int32_t>::max)()),
               "matrix too large for flat traversal");
  const std::size_t d = x.cols();
  const double* xd = x.data().data();
  // Non-contiguous row subset: every kernel takes the offset table here.
  std::vector<std::int32_t> xbase(rows.size());
  for (std::size_t k = 0; k < rows.size(); ++k) {
    xbase[k] = static_cast<std::int32_t>(rows[k] * d);
  }
  const ForestIsa isa = resolve_forest_isa();
  std::vector<std::int64_t> act(kernel_needs_xbase(isa) ? 0 : rows.size());
  std::vector<std::int32_t> cur(rows.size());
  walk_tree(t, xd, xbase.data(), static_cast<std::int32_t>(d), cur.data(),
            rows.size(), isa, act.empty() ? nullptr : act.data());
  for (std::size_t k = 0; k < rows.size(); ++k) {
    out[k] = nodes_[static_cast<std::size_t>(cur[k])].threshold;
  }
}

void FlatForest::accumulate_tree(std::size_t t, const Matrix& x, double scale,
                                 std::span<double> acc) const {
  HPCP_REQUIRE(t < num_trees(), "tree index out of range");
  check_width(x.cols());
  HPCP_REQUIRE(acc.size() == x.rows(), "accumulator must match row count");
  HPCP_REQUIRE(x.data().size() <=
                   static_cast<std::size_t>(
                       (std::numeric_limits<std::int32_t>::max)()),
               "matrix too large for flat traversal");
  const std::size_t n = x.rows();
  const auto d = static_cast<std::int32_t>(x.cols());
  const double* xd = x.data().data();
  const ForestIsa isa = resolve_forest_isa();
  std::vector<std::int32_t> xbase;
  if (kernel_needs_xbase(isa)) xbase = make_xbase(n, x.cols());
  std::vector<std::int64_t> act(kernel_needs_xbase(isa) ? 0 : n);
  std::vector<std::int32_t> cur(n);
  walk_tree(t, xd, xbase.empty() ? nullptr : xbase.data(), d, cur.data(), n,
            isa, act.empty() ? nullptr : act.data());
  for (std::size_t r = 0; r < n; ++r) {
    acc[r] += scale * nodes_[cur[r]].threshold;
  }
}

}  // namespace hpcp
