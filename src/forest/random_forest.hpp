#pragma once

#include <optional>
#include <span>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/thread_pool.hpp"
#include "src/forest/flat_forest.hpp"
#include "src/forest/tree.hpp"
#include "src/linear/matrix.hpp"

/// \file random_forest.hpp
/// Bagged ensemble of CART regression trees — the paper's interpolation-
/// level learner.
///
/// Training bins the feature columns once per fit and shares the bins
/// across all trees (histogram split finding; see tree.hpp). After fitting,
/// the ensemble is packed into a FlatForest and every prediction path —
/// scalar, batched, ensemble statistics, and the out-of-bag pass — runs on
/// the flattened structure-of-arrays layout.

namespace hpcp {

struct ForestOptions {
  std::size_t num_trees = 100;
  TreeOptions tree{.min_samples_leaf = 1, .mtry = 0};
  bool bootstrap = true;
  /// Fraction of features tried per split when tree.mtry == 0:
  /// mtry = max(1, round(ratio * d)). Default considers all features, the
  /// standard choice for regression forests (scikit-learn's default);
  /// randomness then comes from bagging alone.
  double mtry_ratio = 1.0;
  bool compute_oob = true;
};

class RandomForest {
 public:
  RandomForest() = default;
  explicit RandomForest(ForestOptions opts) : opts_(opts) {}

  /// Fit all trees; tree fitting and the OOB pass are parallelised across
  /// the pool (nullptr = the global pool). Deterministic given the Rng seed
  /// regardless of the number of worker threads: per-tree Rngs are forked
  /// up front and OOB contributions are merged in tree order.
  void fit(const Matrix& x, std::span<const double> y, Rng& rng,
           ThreadPool* pool = nullptr);

  /// Warm refit from a prior ensemble: keeps `prior`'s split structure and
  /// recomputes every node value from (x, y) — no split search, no
  /// bootstrap, no RNG, so the result is bitwise identical at any pool
  /// width. Returns false (leaving *this* untouched) when the prior does
  /// not match (unfitted, different feature width or tree count) or some
  /// leaf receives no rows; callers then fall back to a cold fit(). The
  /// refitted ensemble has no OOB estimate.
  [[nodiscard]] bool warm_fit(const RandomForest& prior, const Matrix& x,
                              std::span<const double> y,
                              ThreadPool* pool = nullptr);

  [[nodiscard]] double predict(std::span<const double> features) const;

  /// Batched prediction over every row of x (FlatForest fast path).
  [[nodiscard]] std::vector<double> predict(const Matrix& x) const;

  /// Mean and standard deviation of the per-tree predictions — the ensemble
  /// spread, a useful uncertainty proxy.
  struct PredictionStats {
    double mean = 0.0;
    double stddev = 0.0;
  };
  [[nodiscard]] PredictionStats predict_stats(
      std::span<const double> features) const;

  [[nodiscard]] bool fitted() const noexcept { return !trees_.empty(); }
  [[nodiscard]] std::size_t num_trees() const noexcept { return trees_.size(); }
  /// Width of the feature vectors this forest was fitted on (persisted, so
  /// loaded models can validate query widths at a trust boundary).
  [[nodiscard]] std::size_t num_features() const noexcept {
    return num_features_;
  }
  [[nodiscard]] const ForestOptions& options() const noexcept { return opts_; }

  /// One fitted tree (reference prediction path; the fast path is flat()).
  [[nodiscard]] const RegressionTree& tree(std::size_t i) const {
    return trees_.at(i);
  }

  /// The flattened ensemble every prediction call runs on.
  [[nodiscard]] const FlatForest& flat() const noexcept { return flat_; }

  /// Out-of-bag MSE; empty if bootstrap/compute_oob was off or some row was
  /// never out of bag.
  [[nodiscard]] std::optional<double> oob_mse() const noexcept {
    return oob_mse_;
  }

  /// Impurity-based importance summed over trees, normalised to sum to 1
  /// (all-zero if no splits were made).
  [[nodiscard]] std::vector<double> feature_importance() const;

  /// Serialization of the fitted ensemble (fit-time options are not
  /// persisted; a loaded forest predicts but is not refittable-in-place).
  void save(Serializer& out) const;
  [[nodiscard]] static RandomForest load(Deserializer& in);

 private:
  ForestOptions opts_;
  std::vector<RegressionTree> trees_;
  FlatForest flat_;
  std::optional<double> oob_mse_;
  std::size_t num_features_ = 0;
};

}  // namespace hpcp
