#include "src/forest/random_forest.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/check.hpp"
#include "src/forest/binning.hpp"
#include "src/obs/obs.hpp"

namespace hpcp {

void RandomForest::fit(const Matrix& x, std::span<const double> y, Rng& rng,
                       ThreadPool* pool) {
  const obs::Span span("forest.fit");
  HPCP_REQUIRE(x.rows() == y.size(), "row count must match target length");
  HPCP_REQUIRE(x.rows() > 0, "cannot fit on empty data");
  HPCP_REQUIRE(opts_.num_trees > 0, "need at least one tree");

  num_features_ = x.cols();
  TreeOptions tree_opts = opts_.tree;
  if (tree_opts.mtry == 0 && opts_.mtry_ratio < 1.0) {
    tree_opts.mtry = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::lround(opts_.mtry_ratio * static_cast<double>(x.cols()))));
  }

  const std::size_t n = x.rows();
  const std::size_t t = opts_.num_trees;
  trees_.assign(t, RegressionTree{});

  // Quantile-bin the feature columns once and share the bins across all
  // trees (bootstrap samples draw from the same rows, so per-tree binning
  // would rediscover near-identical boundaries t times over).
  const bool want_hist =
      tree_opts.split_mode == SplitMode::kHistogram ||
      (tree_opts.split_mode == SplitMode::kAuto && n > tree_opts.exact_cutoff);
  obs::count("forest.split_mode", 1,
             {{"engine", want_hist ? "hist" : "exact"}});
  BinnedMatrix bins;
  if (want_hist) bins = BinnedMatrix::build(x, tree_opts.max_bins);
  const BinnedMatrix* shared_bins = want_hist ? &bins : nullptr;

  // Pre-draw per-tree RNGs and bootstrap samples on the caller's thread so
  // results do not depend on worker scheduling.
  std::vector<Rng> tree_rngs;
  tree_rngs.reserve(t);
  std::vector<std::vector<std::size_t>> samples(t);
  for (std::size_t i = 0; i < t; ++i) {
    tree_rngs.push_back(rng.fork());
    if (opts_.bootstrap) {
      samples[i] = tree_rngs.back().bootstrap_indices(n);
    } else {
      samples[i].resize(n);
      std::iota(samples[i].begin(), samples[i].end(), std::size_t{0});
    }
  }

  parallel_for(
      t,
      [&](std::size_t i) {
        trees_[i].fit(x, y, samples[i], tree_opts, tree_rngs[i], shared_bins);
      },
      pool);

  flat_ = FlatForest::build(trees_);

  oob_mse_.reset();
  if (opts_.bootstrap && opts_.compute_oob) {
    // Per-tree OOB predictions computed in parallel, then merged serially
    // in tree order — bit-identical results for any pool size.
    struct OobPart {
      std::vector<std::size_t> rows;
      std::vector<double> preds;
    };
    const auto parts = parallel_map(
        t,
        [&](std::size_t i) {
          OobPart part;
          std::vector<char> in_bag(n, 0);
          for (const std::size_t r : samples[i]) in_bag[r] = 1;
          for (std::size_t r = 0; r < n; ++r) {
            if (!in_bag[r]) part.rows.push_back(r);
          }
          part.preds.resize(part.rows.size());
          flat_.predict_tree_rows(i, x, part.rows, part.preds);
          return part;
        },
        pool);

    std::vector<double> oob_sum(n, 0.0);
    std::vector<std::size_t> oob_count(n, 0);
    for (const OobPart& part : parts) {
      for (std::size_t k = 0; k < part.rows.size(); ++k) {
        oob_sum[part.rows[k]] += part.preds[k];
        ++oob_count[part.rows[k]];
      }
    }
    double mse = 0.0;
    std::size_t covered = 0;
    for (std::size_t r = 0; r < n; ++r) {
      if (oob_count[r] == 0) continue;
      const double pred = oob_sum[r] / static_cast<double>(oob_count[r]);
      mse += (pred - y[r]) * (pred - y[r]);
      ++covered;
    }
    if (covered == n) {
      oob_mse_ = mse / static_cast<double>(n);
    }
  }
}

bool RandomForest::warm_fit(const RandomForest& prior, const Matrix& x,
                            std::span<const double> y, ThreadPool* pool) {
  const obs::Span span("forest.warm_fit");
  HPCP_REQUIRE(x.rows() == y.size(), "row count must match target length");
  if (!prior.fitted() || x.rows() == 0 ||
      prior.num_features_ != x.cols() ||
      prior.trees_.size() != opts_.num_trees) {
    return false;
  }
  // Route every row through every prior tree and recompute node values.
  // Ensemble diversity is inherited from the prior structure (which came
  // from bootstrapped fits); the refit itself is a pure function of the
  // data, so it needs no RNG and stays thread-count invariant.
  const std::size_t t = prior.trees_.size();
  auto refits = parallel_map(
      t,
      [&](std::size_t i) { return prior.trees_[i].refit_leaves(x, y); },
      pool);
  for (const auto& refit : refits) {
    if (!refit) return false;
  }
  obs::count("forest.warm_fits");
  trees_.clear();
  trees_.reserve(t);
  for (auto& refit : refits) trees_.push_back(std::move(*refit));
  num_features_ = x.cols();
  flat_ = FlatForest::build(trees_);
  oob_mse_.reset();
  return true;
}

double RandomForest::predict(std::span<const double> features) const {
  HPCP_REQUIRE(fitted(), "predict before fit");
  double sum = 0.0;
  double sum_sq = 0.0;
  flat_.predict_row_moments(features, sum, sum_sq);
  return sum / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::predict(const Matrix& x) const {
  HPCP_REQUIRE(fitted(), "predict before fit");
  return flat_.predict_mean(x);
}

RandomForest::PredictionStats RandomForest::predict_stats(
    std::span<const double> features) const {
  HPCP_REQUIRE(fitted(), "predict before fit");
  double sum = 0.0;
  double sum_sq = 0.0;
  flat_.predict_row_moments(features, sum, sum_sq);
  const auto t = static_cast<double>(trees_.size());
  const double mean = sum / t;
  const double var = std::max(0.0, sum_sq / t - mean * mean);
  return {.mean = mean, .stddev = std::sqrt(var)};
}

std::vector<double> RandomForest::feature_importance() const {
  HPCP_REQUIRE(fitted(), "importance before fit");
  std::vector<double> total(num_features_, 0.0);
  for (const auto& tree : trees_) {
    const auto& imp = tree.impurity_importance();
    for (std::size_t f = 0; f < num_features_; ++f) total[f] += imp[f];
  }
  const double sum = std::accumulate(total.begin(), total.end(), 0.0);
  if (sum > 0.0) {
    for (auto& v : total) v /= sum;
  }
  return total;
}

void RandomForest::save(Serializer& out) const {
  out.tag("forest");
  out.write(num_features_);
  out.write(oob_mse_.has_value());
  out.write(oob_mse_.value_or(0.0));
  out.write(static_cast<std::size_t>(trees_.size()));
  for (const auto& tree : trees_) tree.save(out);
}

RandomForest RandomForest::load(Deserializer& in) {
  in.expect_tag("forest");
  RandomForest forest;
  forest.num_features_ = in.read_size();
  const bool has_oob = in.read_bool();
  const double oob = in.read_double();
  if (has_oob) forest.oob_mse_ = oob;
  forest.trees_.resize(in.read_size());
  for (auto& tree : forest.trees_) tree = RegressionTree::load(in);
  forest.flat_ = FlatForest::build(forest.trees_);
  return forest;
}

}  // namespace hpcp
