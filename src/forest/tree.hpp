#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/serialize.hpp"
#include "src/forest/binning.hpp"
#include "src/linear/matrix.hpp"

/// \file tree.hpp
/// CART regression tree: binary splits chosen by variance reduction.
///
/// Two split-finding engines share one builder (see DESIGN.md
/// "Performance"):
///  - exact: per node, sort the rows by each candidate feature and scan
///    every adjacent-distinct midpoint (the classical O(d·n log n)/node
///    scan — bitwise the seed behaviour);
///  - histogram: pre-bin each feature once per fit (binning.hpp), then per
///    node accumulate (count, Σy) per bin and scan bin boundaries, with
///    the parent − sibling subtraction trick filling the larger child's
///    histogram for free.
/// SplitMode::kAuto (default) picks histogram for nodes larger than
/// `exact_cutoff` and falls back to the exact scan below it, so tiny HPC
/// histories keep exact splits while large fits get the fast path.

namespace hpcp {

/// Split-finding engine selection.
enum class SplitMode : std::uint8_t {
  kAuto = 0,       ///< histogram above exact_cutoff rows, exact below
  kExact = 1,      ///< exact sorted scan everywhere
  kHistogram = 2,  ///< histogram everywhere (no exact fallback)
};

struct TreeOptions {
  std::size_t max_depth = 0;         ///< 0 = unlimited
  std::size_t min_samples_split = 2; ///< fewer samples -> leaf
  std::size_t min_samples_leaf = 1;  ///< splits leaving smaller children rejected
  std::size_t mtry = 0;              ///< features tried per node; 0 = all
  SplitMode split_mode = SplitMode::kAuto;
  std::size_t max_bins = 64;         ///< histogram resolution (>= 2)
  /// Nodes with at most this many rows use the exact sorted scan under
  /// kAuto; a whole fit of at most this many rows skips binning entirely.
  /// The default keeps every small-history fit (the paper's regime) on the
  /// exact engine and reserves the histogram path for large matrices,
  /// where binning actually pays for itself.
  std::size_t exact_cutoff = 512;
};

class RegressionTree {
 public:
  /// Node of the fitted tree. Leaf iff left < 0; internal nodes send rows
  /// with features[feature] <= threshold left.
  struct Node {
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::int32_t feature = -1;
    double threshold = 0.0;
    double value = 0.0;  ///< mean target of the node's training rows
  };

  /// Fit on all rows of (x, y).
  void fit(const Matrix& x, std::span<const double> y,
           const TreeOptions& opts, Rng& rng);

  /// Fit on a subset of rows (duplicates allowed — bootstrap samples).
  /// `shared_bins`, if given, must be a BinnedMatrix over all rows of x
  /// (with codes row-indexed like x) built with the same max_bins; callers
  /// fitting many trees on one matrix (forests, GBM) bin once and share.
  /// With nullptr the tree bins its own rows when histogram mode applies.
  void fit(const Matrix& x, std::span<const double> y,
           std::span<const std::size_t> row_idx, const TreeOptions& opts,
           Rng& rng, const BinnedMatrix* shared_bins = nullptr);

  [[nodiscard]] double predict(std::span<const double> features) const;
  [[nodiscard]] std::vector<double> predict(const Matrix& x) const;

  /// Warm refit: a copy of this tree with the split structure kept and
  /// every node value recomputed as the mean target of the (x, y) rows
  /// routed to it. No split search, no RNG — bitwise deterministic. Returns
  /// nullopt when some leaf receives no rows (the prior structure no longer
  /// covers the data and the caller should fall back to a cold fit).
  [[nodiscard]] std::optional<RegressionTree> refit_leaves(
      const Matrix& x, std::span<const double> y) const;

  [[nodiscard]] bool fitted() const noexcept { return !nodes_.empty(); }
  [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t num_leaves() const noexcept;
  [[nodiscard]] std::size_t depth() const noexcept;

  /// Flat node storage (pre-order); FlatForest packs these into SoA form.
  [[nodiscard]] const std::vector<Node>& nodes() const noexcept {
    return nodes_;
  }

  /// Per-feature total variance reduction accumulated over all splits,
  /// weighted by node size (CART impurity importance, unnormalised).
  [[nodiscard]] const std::vector<double>& impurity_importance() const noexcept {
    return importance_;
  }

  /// Serialization of the fitted structure.
  void save(Serializer& out) const;
  [[nodiscard]] static RegressionTree load(Deserializer& in);

 private:
  std::vector<Node> nodes_;
  std::vector<double> importance_;
};

}  // namespace hpcp
