#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/serialize.hpp"
#include "src/linear/matrix.hpp"

/// \file tree.hpp
/// CART regression tree: binary splits chosen by variance reduction.

namespace hpcp {

struct TreeOptions {
  std::size_t max_depth = 0;         ///< 0 = unlimited
  std::size_t min_samples_split = 2; ///< fewer samples -> leaf
  std::size_t min_samples_leaf = 1;  ///< splits leaving smaller children rejected
  std::size_t mtry = 0;              ///< features tried per node; 0 = all
};

class RegressionTree {
 public:
  /// Fit on all rows of (x, y).
  void fit(const Matrix& x, std::span<const double> y,
           const TreeOptions& opts, Rng& rng);

  /// Fit on a subset of rows (duplicates allowed — bootstrap samples).
  void fit(const Matrix& x, std::span<const double> y,
           std::span<const std::size_t> row_idx, const TreeOptions& opts,
           Rng& rng);

  [[nodiscard]] double predict(std::span<const double> features) const;
  [[nodiscard]] std::vector<double> predict(const Matrix& x) const;

  [[nodiscard]] bool fitted() const noexcept { return !nodes_.empty(); }
  [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t num_leaves() const noexcept;
  [[nodiscard]] std::size_t depth() const noexcept;

  /// Per-feature total variance reduction accumulated over all splits,
  /// weighted by node size (CART impurity importance, unnormalised).
  [[nodiscard]] const std::vector<double>& impurity_importance() const noexcept {
    return importance_;
  }

  /// Serialization of the fitted structure.
  void save(Serializer& out) const;
  [[nodiscard]] static RegressionTree load(Deserializer& in);

 private:
  struct Node {
    // Leaf iff left < 0. For internal nodes, rows with
    // features[feature] <= threshold go left.
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::int32_t feature = -1;
    double threshold = 0.0;
    double value = 0.0;  ///< mean target of the node's training rows
  };

  std::int32_t build(const Matrix& x, std::span<const double> y,
                     std::vector<std::size_t>& idx, std::size_t begin,
                     std::size_t end, std::size_t depth,
                     const TreeOptions& opts, Rng& rng);

  std::vector<Node> nodes_;
  std::vector<double> importance_;
};

}  // namespace hpcp
