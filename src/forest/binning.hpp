#pragma once

#include <cstdint>
#include <vector>

#include "src/linear/matrix.hpp"

/// \file binning.hpp
/// Quantile pre-binning of feature columns for histogram-based split
/// finding (tree.hpp). Each feature column is discretised once per fit into
/// at most `max_bins` ordered bins; tree nodes then scan per-bin histograms
/// instead of re-sorting rows for every candidate feature.
///
/// Boundary semantics: `boundaries(f)` is the ascending list of candidate
/// split thresholds for feature f. A value v falls into bin
/// `code(v) = #{j : boundaries[j] < v}`, which makes
/// `code(v) <= b  <=>  v <= boundaries[b]` — so a histogram split "bins
/// 0..b go left" is exactly the raw-value test `v <= boundaries[b]`, and
/// thresholds stored in tree nodes remain plain doubles comparable against
/// unbinned inputs at prediction time.
///
/// Boundaries are placed at midpoints between adjacent *distinct* sorted
/// values. When a feature has at most `max_bins` distinct values, every
/// distinct value gets its own bin and the candidate thresholds coincide
/// with the exact sorted-scan's — histogram splits are then identical to
/// exact splits. Otherwise cut positions are chosen at evenly spaced
/// quantiles of the (duplicate-weighted) sorted column, nudged forward out
/// of runs of equal values.

namespace hpcp {

class BinnedMatrix {
 public:
  BinnedMatrix() = default;

  /// Bin every column of x over the given rows (duplicates allowed; they
  /// weight the quantiles). Codes are computed for *all* rows of x so
  /// arbitrary row subsets (bootstrap samples) can be binned-trained later.
  /// Requires 2 <= max_bins <= 65536.
  [[nodiscard]] static BinnedMatrix build(const Matrix& x,
                                          std::size_t max_bins);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t max_bins() const noexcept { return max_bins_; }

  /// Bin index of row r, feature f; in [0, num_bins(f)).
  [[nodiscard]] std::uint16_t code(std::size_t r, std::size_t f) const noexcept {
    return codes_[f * rows_ + r];
  }

  /// Contiguous column of codes for feature f (one entry per row).
  [[nodiscard]] const std::uint16_t* column(std::size_t f) const noexcept {
    return codes_.data() + f * rows_;
  }

  /// Candidate split thresholds for feature f, ascending. Bins number
  /// boundaries(f).size() + 1; a constant column has no boundaries.
  [[nodiscard]] const std::vector<double>& boundaries(std::size_t f) const {
    return boundaries_[f];
  }

  [[nodiscard]] std::size_t num_bins(std::size_t f) const {
    return boundaries_[f].size() + 1;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t max_bins_ = 0;
  std::vector<std::vector<double>> boundaries_;  ///< per feature
  std::vector<std::uint16_t> codes_;             ///< column-major [f * rows_ + r]
};

}  // namespace hpcp
