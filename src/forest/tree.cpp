#include "src/forest/tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "src/common/check.hpp"

namespace hpcp {

namespace {

/// Mean of y over idx[begin, end).
double subset_mean(std::span<const double> y,
                   std::span<const std::size_t> idx) {
  double acc = 0.0;
  for (const std::size_t i : idx) acc += y[i];
  return acc / static_cast<double>(idx.size());
}

/// Sum of squared deviations of y over idx (n * population variance).
double subset_sse(std::span<const double> y, std::span<const std::size_t> idx,
                  double mean) {
  double acc = 0.0;
  for (const std::size_t i : idx) {
    const double d = y[i] - mean;
    acc += d * d;
  }
  return acc;
}

struct BestSplit {
  std::size_t feature = 0;
  double threshold = 0.0;
  double gain = -1.0;  ///< SSE reduction; negative = no valid split found
};

}  // namespace

void RegressionTree::fit(const Matrix& x, std::span<const double> y,
                         const TreeOptions& opts, Rng& rng) {
  std::vector<std::size_t> idx(x.rows());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  fit(x, y, idx, opts, rng);
}

void RegressionTree::fit(const Matrix& x, std::span<const double> y,
                         std::span<const std::size_t> row_idx,
                         const TreeOptions& opts, Rng& rng) {
  HPCP_REQUIRE(x.rows() == y.size(), "row count must match target length");
  HPCP_REQUIRE(!row_idx.empty(), "cannot fit a tree on zero rows");
  HPCP_REQUIRE(opts.min_samples_leaf >= 1, "min_samples_leaf must be >= 1");
  nodes_.clear();
  importance_.assign(x.cols(), 0.0);
  std::vector<std::size_t> idx(row_idx.begin(), row_idx.end());
  build(x, y, idx, 0, idx.size(), 0, opts, rng);
}

std::int32_t RegressionTree::build(const Matrix& x, std::span<const double> y,
                                   std::vector<std::size_t>& idx,
                                   std::size_t begin, std::size_t end,
                                   std::size_t depth, const TreeOptions& opts,
                                   Rng& rng) {
  const std::size_t n = end - begin;
  const std::span<const std::size_t> rows{idx.data() + begin, n};
  const double node_mean = subset_mean(y, rows);
  const double node_sse = subset_sse(y, rows, node_mean);

  const auto node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{.value = node_mean});

  const bool depth_ok = opts.max_depth == 0 || depth < opts.max_depth;
  if (!depth_ok || n < opts.min_samples_split ||
      n < 2 * opts.min_samples_leaf || node_sse <= 1e-24) {
    return node_id;
  }

  // Candidate features: all, or an mtry-sized random subset (random forest).
  const std::size_t d = x.cols();
  std::vector<std::size_t> features;
  if (opts.mtry == 0 || opts.mtry >= d) {
    features.resize(d);
    std::iota(features.begin(), features.end(), std::size_t{0});
  } else {
    features = rng.sample_without_replacement(d, opts.mtry);
  }

  BestSplit best;
  std::vector<std::size_t> order(rows.begin(), rows.end());
  for (const std::size_t f : features) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return x(a, f) < x(b, f);
    });
    // Scan split positions with running prefix sums; split between distinct
    // adjacent feature values only.
    double left_sum = 0.0;
    double total_sum = 0.0;
    for (const std::size_t i : order) total_sum += y[i];
    for (std::size_t pos = 1; pos < n; ++pos) {
      left_sum += y[order[pos - 1]];
      if (x(order[pos - 1], f) == x(order[pos], f)) continue;
      if (pos < opts.min_samples_leaf || n - pos < opts.min_samples_leaf) {
        continue;
      }
      const auto nl = static_cast<double>(pos);
      const auto nr = static_cast<double>(n - pos);
      const double right_sum = total_sum - left_sum;
      // gain = SSE(parent) - SSE(children); with fixed parent SSE, maximise
      // sum_l²/n_l + sum_r²/n_r (standard CART identity).
      const double score =
          left_sum * left_sum / nl + right_sum * right_sum / nr;
      const double parent_score = total_sum * total_sum / static_cast<double>(n);
      const double gain = score - parent_score;
      if (gain > best.gain) {
        best.feature = f;
        best.threshold =
            0.5 * (x(order[pos - 1], f) + x(order[pos], f));
        best.gain = gain;
      }
    }
  }

  if (best.gain <= 0.0) return node_id;

  // Partition idx[begin,end) in place around the chosen split.
  const auto mid_it = std::partition(
      idx.begin() + static_cast<std::ptrdiff_t>(begin),
      idx.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t i) { return x(i, best.feature) <= best.threshold; });
  const auto mid = static_cast<std::size_t>(mid_it - idx.begin());
  HPCP_ASSERT(mid > begin && mid < end, "degenerate partition");

  importance_[best.feature] += best.gain;
  nodes_[static_cast<std::size_t>(node_id)].feature =
      static_cast<std::int32_t>(best.feature);
  nodes_[static_cast<std::size_t>(node_id)].threshold = best.threshold;
  const std::int32_t left =
      build(x, y, idx, begin, mid, depth + 1, opts, rng);
  const std::int32_t right = build(x, y, idx, mid, end, depth + 1, opts, rng);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

double RegressionTree::predict(std::span<const double> features) const {
  HPCP_REQUIRE(fitted(), "predict before fit");
  std::size_t node = 0;
  for (;;) {
    const Node& cur = nodes_[node];
    if (cur.left < 0) return cur.value;
    HPCP_REQUIRE(static_cast<std::size_t>(cur.feature) < features.size(),
                 "feature width mismatch");
    node = static_cast<std::size_t>(
        features[static_cast<std::size_t>(cur.feature)] <= cur.threshold
            ? cur.left
            : cur.right);
  }
}

std::vector<double> RegressionTree::predict(const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict(x.row(r));
  return out;
}

std::size_t RegressionTree::num_leaves() const noexcept {
  std::size_t count = 0;
  for (const auto& n : nodes_) count += n.left < 0 ? 1 : 0;
  return count;
}

std::size_t RegressionTree::depth() const noexcept {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the implicit tree structure.
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 1}};
  std::size_t best = 0;
  while (!stack.empty()) {
    const auto [node, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    const Node& cur = nodes_[node];
    if (cur.left >= 0) {
      stack.emplace_back(static_cast<std::size_t>(cur.left), d + 1);
      stack.emplace_back(static_cast<std::size_t>(cur.right), d + 1);
    }
  }
  return best;
}

void RegressionTree::save(Serializer& out) const {
  out.tag("tree");
  out.write(static_cast<std::size_t>(nodes_.size()));
  for (const Node& n : nodes_) {
    out.write(static_cast<std::int64_t>(n.left));
    out.write(static_cast<std::int64_t>(n.right));
    out.write(static_cast<std::int64_t>(n.feature));
    out.write(n.threshold);
    out.write(n.value);
  }
  out.write(importance_);
}

RegressionTree RegressionTree::load(Deserializer& in) {
  in.expect_tag("tree");
  RegressionTree tree;
  tree.nodes_.resize(in.read_size());
  for (Node& n : tree.nodes_) {
    n.left = static_cast<std::int32_t>(in.read_int());
    n.right = static_cast<std::int32_t>(in.read_int());
    n.feature = static_cast<std::int32_t>(in.read_int());
    n.threshold = in.read_double();
    n.value = in.read_double();
  }
  tree.importance_ = in.read_doubles();
  return tree;
}

}  // namespace hpcp
