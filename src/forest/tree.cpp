#include "src/forest/tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "src/common/check.hpp"

namespace hpcp {

namespace {

struct BestSplit {
  std::size_t feature = 0;
  double threshold = 0.0;
  double gain = -1.0;  ///< SSE reduction; negative = no valid split found
  std::uint16_t bin = 0;
  bool from_hist = false;
};

/// One pending node of the explicit work stack (iterative DFS replaces
/// recursion, so adversarial inputs with max_depth == 0 cannot overflow the
/// call stack however deep the tree gets). `hist`, when non-empty, is the
/// node's per-feature (count, Σy) histogram, laid out
/// [(f * stride + bin) * 2].
struct WorkItem {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t depth = 0;
  std::int32_t parent = -1;
  bool is_left = false;
  std::vector<double> hist;
};

/// Single-fit builder. Gathers the fit rows into dense local arrays
/// (targets; column-major raw values for exact scans; row-major bin codes
/// for histogram accumulation) and grows the node vector in pre-order, the
/// same numbering the recursive builder produced.
class TreeBuilder {
 public:
  TreeBuilder(const Matrix& x, std::span<const double> y,
              std::span<const std::size_t> row_idx, const TreeOptions& opts,
              Rng& rng, const BinnedMatrix* shared_bins,
              std::vector<RegressionTree::Node>& nodes,
              std::vector<double>& importance)
      : opts_(opts),
        rng_(rng),
        nodes_(nodes),
        importance_(importance),
        n_(row_idx.size()),
        d_(x.cols()) {
    switch (opts.split_mode) {
      case SplitMode::kExact:
        hist_tree_ = false;
        break;
      case SplitMode::kHistogram:
        hist_tree_ = true;
        exact_fallback_ = false;
        break;
      case SplitMode::kAuto:
        hist_tree_ = n_ > opts.exact_cutoff;
        break;
    }

    ys_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) ys_[i] = y[row_idx[i]];

    if (!hist_tree_ || exact_fallback_) {
      lx_.resize(n_ * d_);
      for (std::size_t f = 0; f < d_; ++f) {
        double* col = lx_.data() + f * n_;
        for (std::size_t i = 0; i < n_; ++i) col[i] = x(row_idx[i], f);
      }
    }

    if (hist_tree_) {
      if (shared_bins != nullptr) {
        HPCP_REQUIRE(shared_bins->rows() == x.rows() &&
                         shared_bins->cols() == x.cols(),
                     "shared bins must cover the full training matrix");
        bins_ = shared_bins;
      } else {
        owned_bins_ =
            BinnedMatrix::build(x.select_rows(row_idx), opts.max_bins);
        bins_ = &owned_bins_;
      }
      stride_ = bins_->max_bins();
      lc_.resize(n_ * d_);
      for (std::size_t i = 0; i < n_; ++i) {
        const std::size_t src = shared_bins != nullptr ? row_idx[i] : i;
        for (std::size_t f = 0; f < d_; ++f) {
          lc_[i * d_ + f] = bins_->code(src, f);
        }
      }
    }

    idx_.resize(n_);
    std::iota(idx_.begin(), idx_.end(), std::size_t{0});
  }

  void run() {
    stack_.push_back(
        WorkItem{.begin = 0, .end = n_, .depth = 0, .hist = {}});
    while (!stack_.empty()) {
      WorkItem item = std::move(stack_.back());
      stack_.pop_back();
      process(std::move(item));
    }
  }

 private:
  [[nodiscard]] bool depth_ok(std::size_t depth) const noexcept {
    return opts_.max_depth == 0 || depth < opts_.max_depth;
  }

  /// Histogram engine applies to this node (vs the exact fallback).
  [[nodiscard]] bool node_uses_hist(std::size_t n) const noexcept {
    return hist_tree_ && (!exact_fallback_ || n > opts_.exact_cutoff);
  }

  /// A child node is worth a histogram only if it can still split.
  [[nodiscard]] bool child_wants_hist(std::size_t n, std::size_t depth) const
      noexcept {
    return node_uses_hist(n) && depth_ok(depth) &&
           n >= opts_.min_samples_split && n >= 2 * opts_.min_samples_leaf;
  }

  [[nodiscard]] std::vector<double> make_hist(std::size_t begin,
                                              std::size_t end) const {
    std::vector<double> h(d_ * stride_ * 2, 0.0);
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t pos = idx_[i];
      const double yv = ys_[pos];
      const std::uint16_t* codes = lc_.data() + pos * d_;
      for (std::size_t f = 0; f < d_; ++f) {
        double* cell = h.data() + (f * stride_ + codes[f]) * 2;
        cell[0] += 1.0;
        cell[1] += yv;
      }
    }
    return h;
  }

  [[nodiscard]] BestSplit best_hist_split(
      const std::vector<double>& hist, std::size_t n,
      std::span<const std::size_t> features) const {
    BestSplit best;
    const auto nn = static_cast<double>(n);
    const auto min_leaf = static_cast<double>(opts_.min_samples_leaf);
    for (const std::size_t f : features) {
      const auto& bounds = bins_->boundaries(f);
      if (bounds.empty()) continue;
      const double* hf = hist.data() + f * stride_ * 2;
      double total = 0.0;
      for (std::size_t b = 0; b <= bounds.size(); ++b) total += hf[2 * b + 1];
      // gain = SSE(parent) - SSE(children); with fixed parent SSE, maximise
      // sum_l²/n_l + sum_r²/n_r (standard CART identity). The parent score
      // is loop-invariant, so it is computed once per feature.
      const double parent_score = total * total / nn;
      double cnt = 0.0;
      double sum = 0.0;
      for (std::size_t b = 0; b < bounds.size(); ++b) {
        cnt += hf[2 * b];
        sum += hf[2 * b + 1];
        if (cnt == 0.0) continue;  // leading empty bins
        if (cnt == nn) break;      // nothing remains on the right
        if (cnt < min_leaf || nn - cnt < min_leaf) continue;
        const double right_sum = total - sum;
        const double score =
            sum * sum / cnt + right_sum * right_sum / (nn - cnt);
        const double gain = score - parent_score;
        if (gain > best.gain) {
          best.feature = f;
          best.threshold = bounds[b];
          best.gain = gain;
          best.bin = static_cast<std::uint16_t>(b);
          best.from_hist = true;
        }
      }
    }
    return best;
  }

  [[nodiscard]] BestSplit best_exact_split(
      std::size_t begin, std::size_t end,
      std::span<const std::size_t> features) {
    const std::size_t n = end - begin;
    const auto nn = static_cast<double>(n);
    BestSplit best;
    order_.assign(idx_.begin() + static_cast<std::ptrdiff_t>(begin),
                  idx_.begin() + static_cast<std::ptrdiff_t>(end));
    for (const std::size_t f : features) {
      const double* col = lx_.data() + f * n_;
      std::sort(order_.begin(), order_.end(),
                [col](std::size_t a, std::size_t b) { return col[a] < col[b]; });
      // Scan split positions with running prefix sums; split between
      // distinct adjacent feature values only.
      double left_sum = 0.0;
      double total_sum = 0.0;
      for (const std::size_t i : order_) total_sum += ys_[i];
      const double parent_score = total_sum * total_sum / nn;  // invariant
      for (std::size_t pos = 1; pos < n; ++pos) {
        left_sum += ys_[order_[pos - 1]];
        if (col[order_[pos - 1]] == col[order_[pos]]) continue;
        if (pos < opts_.min_samples_leaf ||
            n - pos < opts_.min_samples_leaf) {
          continue;
        }
        const auto nl = static_cast<double>(pos);
        const auto nr = static_cast<double>(n - pos);
        const double right_sum = total_sum - left_sum;
        const double score =
            left_sum * left_sum / nl + right_sum * right_sum / nr;
        const double gain = score - parent_score;
        if (gain > best.gain) {
          best.feature = f;
          best.threshold = 0.5 * (col[order_[pos - 1]] + col[order_[pos]]);
          best.gain = gain;
          best.from_hist = false;
        }
      }
    }
    return best;
  }

  void process(WorkItem item) {
    const std::size_t n = item.end - item.begin;
    double sum = 0.0;
    for (std::size_t i = item.begin; i < item.end; ++i) sum += ys_[idx_[i]];
    const double mean = sum / static_cast<double>(n);
    double sse = 0.0;
    for (std::size_t i = item.begin; i < item.end; ++i) {
      const double dev = ys_[idx_[i]] - mean;
      sse += dev * dev;
    }

    const auto node_id = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back(RegressionTree::Node{.value = mean});
    if (item.parent >= 0) {
      auto& parent = nodes_[static_cast<std::size_t>(item.parent)];
      (item.is_left ? parent.left : parent.right) = node_id;
    }

    if (!depth_ok(item.depth) || n < opts_.min_samples_split ||
        n < 2 * opts_.min_samples_leaf || sse <= 1e-24) {
      return;
    }

    // Candidate features: all, or an mtry-sized random subset (random
    // forest). Pre-order processing keeps the rng consumption order
    // identical to the old recursive builder.
    std::vector<std::size_t> features;
    if (opts_.mtry == 0 || opts_.mtry >= d_) {
      features.resize(d_);
      std::iota(features.begin(), features.end(), std::size_t{0});
    } else {
      features = rng_.sample_without_replacement(d_, opts_.mtry);
    }

    const bool use_hist = node_uses_hist(n);
    BestSplit best;
    if (use_hist) {
      if (item.hist.empty()) item.hist = make_hist(item.begin, item.end);
      best = best_hist_split(item.hist, n, features);
    } else {
      best = best_exact_split(item.begin, item.end, features);
    }
    if (best.gain <= 0.0) return;

    // Partition local positions around the chosen split.
    const auto first = idx_.begin() + static_cast<std::ptrdiff_t>(item.begin);
    const auto last = idx_.begin() + static_cast<std::ptrdiff_t>(item.end);
    std::vector<std::size_t>::iterator mid_it;
    if (best.from_hist) {
      const std::size_t f = best.feature;
      const std::uint16_t bin = best.bin;
      const std::size_t d = d_;
      const std::uint16_t* lc = lc_.data();
      mid_it = std::partition(first, last, [lc, d, f, bin](std::size_t i) {
        return lc[i * d + f] <= bin;
      });
    } else {
      const double* col = lx_.data() + best.feature * n_;
      const double thr = best.threshold;
      mid_it = std::partition(
          first, last, [col, thr](std::size_t i) { return col[i] <= thr; });
    }
    const auto mid = static_cast<std::size_t>(mid_it - idx_.begin());
    HPCP_ASSERT(mid > item.begin && mid < item.end, "degenerate partition");

    importance_[best.feature] += best.gain;
    auto& node = nodes_[static_cast<std::size_t>(node_id)];
    node.feature = static_cast<std::int32_t>(best.feature);
    node.threshold = best.threshold;

    WorkItem left{.begin = item.begin,
                  .end = mid,
                  .depth = item.depth + 1,
                  .parent = node_id,
                  .is_left = true,
                  .hist = {}};
    WorkItem right{.begin = mid,
                   .end = item.end,
                   .depth = item.depth + 1,
                   .parent = node_id,
                   .is_left = false,
                   .hist = {}};

    if (use_hist) {
      // Parent − sibling subtraction: accumulate only the smaller child's
      // histogram and derive the larger one by reusing the parent's buffer.
      WorkItem& small = left.end - left.begin <= right.end - right.begin
                            ? left
                            : right;
      WorkItem& big = &small == &left ? right : left;
      const bool small_wants =
          child_wants_hist(small.end - small.begin, small.depth);
      const bool big_wants = child_wants_hist(big.end - big.begin, big.depth);
      if (big_wants) {
        small.hist = make_hist(small.begin, small.end);
        auto& ph = item.hist;
        for (std::size_t k = 0; k < ph.size(); ++k) ph[k] -= small.hist[k];
        big.hist = std::move(item.hist);
        if (!small_wants) small.hist.clear();
      } else if (small_wants) {
        small.hist = make_hist(small.begin, small.end);
      }
    }

    // LIFO: right first so the left child is processed next (pre-order).
    stack_.push_back(std::move(right));
    stack_.push_back(std::move(left));
  }

  const TreeOptions& opts_;
  Rng& rng_;
  std::vector<RegressionTree::Node>& nodes_;
  std::vector<double>& importance_;
  std::size_t n_;
  std::size_t d_;
  bool hist_tree_ = false;
  bool exact_fallback_ = true;
  const BinnedMatrix* bins_ = nullptr;
  BinnedMatrix owned_bins_;
  std::size_t stride_ = 0;
  std::vector<double> ys_;          ///< local targets, one per fit row
  std::vector<double> lx_;          ///< column-major raw values [f * n_ + i]
  std::vector<std::uint16_t> lc_;   ///< row-major bin codes [i * d_ + f]
  std::vector<std::size_t> idx_;    ///< local positions, partitioned in place
  std::vector<std::size_t> order_;  ///< scratch for exact-scan sorting
  std::vector<WorkItem> stack_;
};

}  // namespace

void RegressionTree::fit(const Matrix& x, std::span<const double> y,
                         const TreeOptions& opts, Rng& rng) {
  std::vector<std::size_t> idx(x.rows());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  fit(x, y, idx, opts, rng);
}

void RegressionTree::fit(const Matrix& x, std::span<const double> y,
                         std::span<const std::size_t> row_idx,
                         const TreeOptions& opts, Rng& rng,
                         const BinnedMatrix* shared_bins) {
  HPCP_REQUIRE(x.rows() == y.size(), "row count must match target length");
  HPCP_REQUIRE(!row_idx.empty(), "cannot fit a tree on zero rows");
  HPCP_REQUIRE(opts.min_samples_leaf >= 1, "min_samples_leaf must be >= 1");
  HPCP_REQUIRE(opts.max_bins >= 2, "max_bins must be >= 2");
  nodes_.clear();
  importance_.assign(x.cols(), 0.0);
  TreeBuilder builder(x, y, row_idx, opts, rng, shared_bins, nodes_,
                      importance_);
  builder.run();
}

double RegressionTree::predict(std::span<const double> features) const {
  HPCP_REQUIRE(fitted(), "predict before fit");
  std::size_t node = 0;
  for (;;) {
    const Node& cur = nodes_[node];
    if (cur.left < 0) return cur.value;
    HPCP_REQUIRE(static_cast<std::size_t>(cur.feature) < features.size(),
                 "feature width mismatch");
    node = static_cast<std::size_t>(
        features[static_cast<std::size_t>(cur.feature)] <= cur.threshold
            ? cur.left
            : cur.right);
  }
}

std::vector<double> RegressionTree::predict(const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict(x.row(r));
  return out;
}

std::optional<RegressionTree> RegressionTree::refit_leaves(
    const Matrix& x, std::span<const double> y) const {
  HPCP_REQUIRE(fitted(), "refit before fit");
  HPCP_REQUIRE(x.rows() == y.size(), "row count must match target length");
  std::vector<double> sum(nodes_.size(), 0.0);
  std::vector<std::size_t> count(nodes_.size(), 0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    std::size_t node = 0;
    for (;;) {
      sum[node] += y[r];
      ++count[node];
      const Node& cur = nodes_[node];
      if (cur.left < 0) break;
      HPCP_REQUIRE(static_cast<std::size_t>(cur.feature) < row.size(),
                   "feature width mismatch");
      node = static_cast<std::size_t>(
          row[static_cast<std::size_t>(cur.feature)] <= cur.threshold
              ? cur.left
              : cur.right);
    }
  }
  RegressionTree out = *this;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (out.nodes_[i].left < 0 && count[i] == 0) return std::nullopt;
    if (count[i] > 0) {
      out.nodes_[i].value = sum[i] / static_cast<double>(count[i]);
    }
  }
  return out;
}

std::size_t RegressionTree::num_leaves() const noexcept {
  std::size_t count = 0;
  for (const auto& n : nodes_) count += n.left < 0 ? 1 : 0;
  return count;
}

std::size_t RegressionTree::depth() const noexcept {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the implicit tree structure.
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 1}};
  std::size_t best = 0;
  while (!stack.empty()) {
    const auto [node, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    const Node& cur = nodes_[node];
    if (cur.left >= 0) {
      stack.emplace_back(static_cast<std::size_t>(cur.left), d + 1);
      stack.emplace_back(static_cast<std::size_t>(cur.right), d + 1);
    }
  }
  return best;
}

void RegressionTree::save(Serializer& out) const {
  out.tag("tree");
  out.write(static_cast<std::size_t>(nodes_.size()));
  for (const Node& n : nodes_) {
    out.write(static_cast<std::int64_t>(n.left));
    out.write(static_cast<std::int64_t>(n.right));
    out.write(static_cast<std::int64_t>(n.feature));
    out.write(n.threshold);
    out.write(n.value);
  }
  out.write(importance_);
}

RegressionTree RegressionTree::load(Deserializer& in) {
  in.expect_tag("tree");
  RegressionTree tree;
  tree.nodes_.resize(in.read_size());
  for (Node& n : tree.nodes_) {
    n.left = static_cast<std::int32_t>(in.read_int());
    n.right = static_cast<std::int32_t>(in.read_int());
    n.feature = static_cast<std::int32_t>(in.read_int());
    n.threshold = in.read_double();
    n.value = in.read_double();
  }
  tree.importance_ = in.read_doubles();
  return tree;
}

}  // namespace hpcp
