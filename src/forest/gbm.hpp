#pragma once

#include <span>
#include <vector>

#include "src/common/rng.hpp"
#include "src/forest/flat_forest.hpp"
#include "src/forest/tree.hpp"
#include "src/linear/matrix.hpp"

/// \file gbm.hpp
/// Gradient-boosted regression trees (least-squares boosting): the other
/// standard tabular learner HPC-performance papers compare against. Each
/// stage fits a shallow CART tree to the current residuals and is added
/// with a small learning rate; optional row subsampling (stochastic
/// gradient boosting) decorrelates stages.
///
/// Training bins the feature columns once and shares the bins across all
/// rounds; each round's residual update and every predict call run batched
/// on the flattened (FlatForest) tree layout.

namespace hpcp {

struct GbmOptions {
  std::size_t num_rounds = 200;
  double learning_rate = 0.1;
  TreeOptions tree{.max_depth = 3, .min_samples_leaf = 3};
  /// Fraction of rows drawn (without replacement) per round; 1.0 = all.
  double subsample = 0.8;
};

class GradientBoostedTrees {
 public:
  GradientBoostedTrees() = default;
  explicit GradientBoostedTrees(GbmOptions opts) : opts_(opts) {}

  void fit(const Matrix& x, std::span<const double> y, Rng& rng);

  [[nodiscard]] double predict(std::span<const double> features) const;

  /// Batched prediction over every row of x (FlatForest fast path).
  [[nodiscard]] std::vector<double> predict(const Matrix& x) const;

  /// Staged predictions: row k of the result holds the model's predictions
  /// after (k + 1) * stride rounds (the last row always includes every
  /// round). One batched pass over the ensemble — for early-stopping and
  /// learning-curve analysis without refitting.
  [[nodiscard]] Matrix staged_predict(const Matrix& x,
                                      std::size_t stride = 1) const;

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }
  [[nodiscard]] std::size_t num_rounds() const noexcept {
    return trees_.size();
  }
  [[nodiscard]] const GbmOptions& options() const noexcept { return opts_; }

  /// Training MSE after each round (for monitoring / early-stopping tests).
  [[nodiscard]] const std::vector<double>& training_curve() const noexcept {
    return train_mse_;
  }

 private:
  GbmOptions opts_{};
  bool fitted_ = false;
  double base_prediction_ = 0.0;
  std::vector<RegressionTree> trees_;
  FlatForest flat_;
  std::vector<double> train_mse_;
};

}  // namespace hpcp
