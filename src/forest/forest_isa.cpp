#include "src/forest/forest_isa.hpp"

#include <cstdlib>
#include <cstring>

namespace hpcp {

ForestIsa detect_forest_isa() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return ForestIsa::kAvx2;
  if (__builtin_cpu_supports("sse2")) return ForestIsa::kSse2;
#endif
  return ForestIsa::kScalar;
}

ForestIsa resolve_forest_isa() {
  const ForestIsa widest = detect_forest_isa();
  const char* env = std::getenv("HPCP_FOREST_ISA");
  if (env == nullptr || std::strcmp(env, "auto") == 0) return widest;
  // Requests wider than the CPU clamp down instead of faulting: asking
  // for avx2 on an sse2-only box runs sse2, never SIGILL.
  if (std::strcmp(env, "avx2") == 0) {
    return widest == ForestIsa::kAvx2 ? ForestIsa::kAvx2 : widest;
  }
  if (std::strcmp(env, "sse2") == 0) {
    return widest == ForestIsa::kScalar ? ForestIsa::kScalar
                                        : ForestIsa::kSse2;
  }
  // "scalar" and anything unrecognised: the reference path. A typo must
  // degrade to correct-but-slow, never to undefined behaviour.
  return ForestIsa::kScalar;
}

const char* forest_isa_name(ForestIsa isa) {
  switch (isa) {
    case ForestIsa::kAvx2: return "avx2";
    case ForestIsa::kSse2: return "sse2";
    case ForestIsa::kScalar: break;
  }
  return "scalar";
}

}  // namespace hpcp
