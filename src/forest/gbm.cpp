#include "src/forest/gbm.hpp"

#include <algorithm>
#include <numeric>

#include "src/common/check.hpp"
#include "src/common/stats.hpp"

namespace hpcp {

void GradientBoostedTrees::fit(const Matrix& x, std::span<const double> y,
                               Rng& rng) {
  HPCP_REQUIRE(x.rows() == y.size(), "row count must match target length");
  HPCP_REQUIRE(x.rows() > 0, "cannot fit on empty data");
  HPCP_REQUIRE(opts_.num_rounds > 0, "need at least one round");
  HPCP_REQUIRE(opts_.learning_rate > 0.0 && opts_.learning_rate <= 1.0,
               "learning rate must be in (0, 1]");
  HPCP_REQUIRE(opts_.subsample > 0.0 && opts_.subsample <= 1.0,
               "subsample fraction must be in (0, 1]");

  const std::size_t n = x.rows();
  base_prediction_ = mean(y);
  trees_.clear();
  trees_.reserve(opts_.num_rounds);
  train_mse_.clear();
  train_mse_.reserve(opts_.num_rounds);

  // residual[i] = y_i − F(x_i); for squared loss the negative gradient.
  std::vector<double> residual(n);
  for (std::size_t i = 0; i < n; ++i) residual[i] = y[i] - base_prediction_;

  const auto sample_rows = std::max<std::size_t>(
      1, static_cast<std::size_t>(opts_.subsample * static_cast<double>(n)));

  for (std::size_t round = 0; round < opts_.num_rounds; ++round) {
    std::vector<std::size_t> rows;
    if (sample_rows < n) {
      rows = rng.sample_without_replacement(n, sample_rows);
    } else {
      rows.resize(n);
      std::iota(rows.begin(), rows.end(), std::size_t{0});
    }
    RegressionTree tree;
    Rng tree_rng = rng.fork();
    tree.fit(x, residual, rows, opts_.tree, tree_rng);

    double mse = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      residual[i] -= opts_.learning_rate * tree.predict(x.row(i));
      mse += residual[i] * residual[i];
    }
    train_mse_.push_back(mse / static_cast<double>(n));
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
}

double GradientBoostedTrees::predict(std::span<const double> features) const {
  HPCP_REQUIRE(fitted_, "predict before fit");
  double acc = base_prediction_;
  for (const auto& tree : trees_) {
    acc += opts_.learning_rate * tree.predict(features);
  }
  return acc;
}

std::vector<double> GradientBoostedTrees::predict(const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict(x.row(r));
  return out;
}

}  // namespace hpcp
