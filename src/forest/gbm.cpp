#include "src/forest/gbm.hpp"

#include <algorithm>
#include <numeric>

#include "src/common/check.hpp"
#include "src/common/stats.hpp"
#include "src/forest/binning.hpp"
#include "src/obs/obs.hpp"

namespace hpcp {

void GradientBoostedTrees::fit(const Matrix& x, std::span<const double> y,
                               Rng& rng) {
  const obs::Span span("gbm.fit");
  HPCP_REQUIRE(x.rows() == y.size(), "row count must match target length");
  HPCP_REQUIRE(x.rows() > 0, "cannot fit on empty data");
  HPCP_REQUIRE(opts_.num_rounds > 0, "need at least one round");
  HPCP_REQUIRE(opts_.learning_rate > 0.0 && opts_.learning_rate <= 1.0,
               "learning rate must be in (0, 1]");
  HPCP_REQUIRE(opts_.subsample > 0.0 && opts_.subsample <= 1.0,
               "subsample fraction must be in (0, 1]");

  const std::size_t n = x.rows();
  base_prediction_ = mean(y);
  trees_.clear();
  trees_.reserve(opts_.num_rounds);
  train_mse_.clear();
  train_mse_.reserve(opts_.num_rounds);

  // residual[i] = y_i − F(x_i); for squared loss the negative gradient.
  std::vector<double> residual(n);
  for (std::size_t i = 0; i < n; ++i) residual[i] = y[i] - base_prediction_;

  const auto sample_rows = std::max<std::size_t>(
      1, static_cast<std::size_t>(opts_.subsample * static_cast<double>(n)));

  // Bin once; every round's tree shares the same feature bins (the feature
  // matrix never changes across rounds — only the residual target does).
  const bool want_hist =
      opts_.tree.split_mode == SplitMode::kHistogram ||
      (opts_.tree.split_mode == SplitMode::kAuto &&
       sample_rows > opts_.tree.exact_cutoff);
  obs::count("forest.split_mode", 1,
             {{"engine", want_hist ? "hist" : "exact"}});
  BinnedMatrix bins;
  if (want_hist) bins = BinnedMatrix::build(x, opts_.tree.max_bins);
  const BinnedMatrix* shared_bins = want_hist ? &bins : nullptr;

  for (std::size_t round = 0; round < opts_.num_rounds; ++round) {
    std::vector<std::size_t> rows;
    if (sample_rows < n) {
      rows = rng.sample_without_replacement(n, sample_rows);
    } else {
      rows.resize(n);
      std::iota(rows.begin(), rows.end(), std::size_t{0});
    }
    RegressionTree tree;
    Rng tree_rng = rng.fork();
    tree.fit(x, residual, rows, opts_.tree, tree_rng, shared_bins);

    // Staged residual update, batched over all rows via the flat layout.
    const FlatForest stage = FlatForest::build({&tree, 1});
    stage.accumulate_tree(0, x, -opts_.learning_rate, residual);
    double mse = 0.0;
    for (std::size_t i = 0; i < n; ++i) mse += residual[i] * residual[i];
    train_mse_.push_back(mse / static_cast<double>(n));
    trees_.push_back(std::move(tree));
  }
  flat_ = FlatForest::build(trees_);
  fitted_ = true;
}

double GradientBoostedTrees::predict(std::span<const double> features) const {
  HPCP_REQUIRE(fitted_, "predict before fit");
  double acc = base_prediction_;
  for (std::size_t t = 0; t < flat_.num_trees(); ++t) {
    acc += opts_.learning_rate * flat_.predict_tree_row(t, features);
  }
  return acc;
}

std::vector<double> GradientBoostedTrees::predict(const Matrix& x) const {
  HPCP_REQUIRE(fitted_, "predict before fit");
  std::vector<double> out(x.rows(), base_prediction_);
  for (std::size_t t = 0; t < flat_.num_trees(); ++t) {
    flat_.accumulate_tree(t, x, opts_.learning_rate, out);
  }
  return out;
}

Matrix GradientBoostedTrees::staged_predict(const Matrix& x,
                                            std::size_t stride) const {
  HPCP_REQUIRE(fitted_, "predict before fit");
  HPCP_REQUIRE(stride >= 1, "stride must be >= 1");
  const std::size_t rounds = trees_.size();
  const std::size_t stages = (rounds + stride - 1) / stride;
  Matrix out(stages, x.rows());
  std::vector<double> acc(x.rows(), base_prediction_);
  std::size_t stage = 0;
  for (std::size_t t = 0; t < rounds; ++t) {
    flat_.accumulate_tree(t, x, opts_.learning_rate, acc);
    if ((t + 1) % stride == 0 || t + 1 == rounds) {
      out.set_row(stage++, acc);
    }
  }
  HPCP_ASSERT(stage == stages, "stage count mismatch");
  return out;
}

}  // namespace hpcp
