#pragma once

/// \file forest_isa.hpp
/// Runtime instruction-set dispatch for the FlatForest traversal kernels.
///
/// The batched tree walk ships in three builds of the same algorithm: a
/// scalar reference, an SSE2 two-lane kernel, and an AVX2 four-lane
/// gather kernel (flat_forest.cpp). All three are bitwise-identical by
/// contract — same comparisons (`x <= threshold`, NaN thresholds send
/// rows right under both scalar and `_CMP_LE_OQ` semantics), same leaf
/// values, same accumulation order — so which one runs is purely a speed
/// decision and every caller inherits it invisibly.
///
/// Selection order: the `HPCP_FOREST_ISA` environment variable
/// (`scalar` / `sse2` / `avx2` / `auto`, re-read on every resolve so
/// tests can flip it mid-process), clamped to what the CPU actually
/// supports, else the widest supported kernel. On non-x86 builds the
/// answer is always `kScalar`.

namespace hpcp {

enum class ForestIsa {
  kScalar,  ///< portable reference walker
  kSse2,    ///< two rows per step, vector compare/select
  kAvx2,    ///< four rows per step, hardware gathers
};

/// Kernel the next FlatForest batch call will run: env override clamped
/// to CPU support. Cheap enough to call per batch (one getenv).
[[nodiscard]] ForestIsa resolve_forest_isa();

/// Widest kernel this CPU supports, ignoring the env override.
[[nodiscard]] ForestIsa detect_forest_isa();

/// "scalar" / "sse2" / "avx2" — bench artifacts record this.
[[nodiscard]] const char* forest_isa_name(ForestIsa isa);

}  // namespace hpcp
