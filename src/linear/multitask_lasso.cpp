#include "src/linear/multitask_lasso.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/check.hpp"
#include "src/linear/scaler.hpp"
#include "src/obs/obs.hpp"

namespace hpcp {

MultiTaskLinearModel::MultiTaskLinearModel(std::vector<double> intercepts,
                                           Matrix weights)
    : intercepts_(std::move(intercepts)), weights_(std::move(weights)) {
  HPCP_REQUIRE(weights_.cols() == intercepts_.size(),
               "one intercept per task required");
}

std::vector<double> MultiTaskLinearModel::predict(
    std::span<const double> x) const {
  HPCP_REQUIRE(x.size() == features(), "feature width mismatch");
  std::vector<double> out = intercepts_;
  for (std::size_t j = 0; j < features(); ++j) {
    const double xj = x[j];
    if (xj == 0.0) continue;
    const auto wrow = weights_.row(j);
    for (std::size_t t = 0; t < out.size(); ++t) out[t] += wrow[t] * xj;
  }
  return out;
}

double MultiTaskLinearModel::predict_task(std::span<const double> x,
                                          std::size_t task) const {
  HPCP_REQUIRE(task < tasks(), "task index out of range");
  HPCP_REQUIRE(x.size() == features(), "feature width mismatch");
  double acc = intercepts_[task];
  for (std::size_t j = 0; j < features(); ++j) {
    acc += weights_(j, task) * x[j];
  }
  return acc;
}

Matrix MultiTaskLinearModel::predict(const Matrix& x) const {
  Matrix out(x.rows(), tasks());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto pred = predict(x.row(r));
    out.set_row(r, pred);
  }
  return out;
}

std::vector<std::size_t> MultiTaskLinearModel::support() const {
  std::vector<std::size_t> idx;
  for (std::size_t j = 0; j < features(); ++j) {
    const auto row = weights_.row(j);
    double norm = 0.0;
    for (const double v : row) norm += v * v;
    if (norm > 0.0) idx.push_back(j);
  }
  return idx;
}

MultiTaskLinearModel fit_multitask_lasso(const Matrix& x, const Matrix& y,
                                         const MultiTaskLassoOptions& opts,
                                         MultiTaskFitInfo* info) {
  const obs::Span span("lasso.multitask_fit");
  HPCP_REQUIRE(x.rows() == y.rows(), "X and Y row counts must match");
  HPCP_REQUIRE(x.rows() > 0, "cannot fit on empty data");
  HPCP_REQUIRE(y.cols() > 0, "need at least one task");
  HPCP_REQUIRE(opts.lambda >= 0.0, "lambda must be non-negative");

  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const std::size_t T = y.cols();
  const auto dn = static_cast<double>(n);

  const auto scaler = StandardScaler::fit(x);
  const Matrix xs = scaler.transform(x);

  std::vector<double> y_mean(T, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = y.row(r);
    for (std::size_t t = 0; t < T; ++t) y_mean[t] += row[t];
  }
  for (auto& m : y_mean) m /= dn;

  std::vector<std::vector<double>> col(d);
  std::vector<double> col_sq_norm(d);
  for (std::size_t j = 0; j < d; ++j) {
    col[j] = xs.column(j);
    double s = 0.0;
    for (const double v : col[j]) s += v * v;
    col_sq_norm[j] = s / dn;
  }

  // Residual R = Yc − XW, stored row-major (n × T). W rows update jointly.
  Matrix w(d, T);
  Matrix residual(n, T);
  for (std::size_t r = 0; r < n; ++r) {
    const auto yrow = y.row(r);
    auto rrow = residual.row(r);
    for (std::size_t t = 0; t < T; ++t) rrow[t] = yrow[t] - y_mean[t];
  }

  std::vector<double> c(T);
  MultiTaskFitInfo local_info;
  // Resolve the gauge once outside the loop: registry lookups take a lock,
  // the per-iteration set() is a single relaxed store.
  obs::Gauge* delta_gauge =
      obs::metrics_enabled()
          ? &obs::global_metrics().gauge("lasso.multitask_max_delta")
          : nullptr;
  for (std::size_t it = 0; it < opts.max_iter; ++it) {
    double max_delta = 0.0;
    double max_w = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      if (col_sq_norm[j] <= 0.0) continue;
      auto wrow = w.row(j);
      // c = (1/n)·x_jᵀ(R + x_j·W_j) for all tasks at once.
      std::fill(c.begin(), c.end(), 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        const double xij = col[j][i];
        if (xij == 0.0) continue;
        const auto rrow = residual.row(i);
        for (std::size_t t = 0; t < T; ++t) c[t] += xij * rrow[t];
      }
      double c_norm_sq = 0.0;
      for (std::size_t t = 0; t < T; ++t) {
        c[t] = c[t] / dn + col_sq_norm[j] * wrow[t];
        c_norm_sq += c[t] * c[t];
      }
      const double c_norm = std::sqrt(c_norm_sq);
      // Row-wise (vector) soft threshold.
      const double shrink =
          c_norm > opts.lambda ? (1.0 - opts.lambda / c_norm) / col_sq_norm[j]
                               : 0.0;
      for (std::size_t t = 0; t < T; ++t) {
        const double new_wjt = shrink * c[t];
        const double delta = new_wjt - wrow[t];
        if (delta != 0.0) {
          for (std::size_t i = 0; i < n; ++i) {
            residual(i, t) -= delta * col[j][i];
          }
          wrow[t] = new_wjt;
          max_delta = std::max(max_delta, std::abs(delta));
        }
        max_w = std::max(max_w, std::abs(wrow[t]));
      }
    }
    local_info.iterations = it + 1;
    if (delta_gauge != nullptr) delta_gauge->set(max_delta);
    if (max_delta <= opts.tol * std::max(max_w, 1e-12)) {
      local_info.converged = true;
      break;
    }
  }
  obs::count("lasso.multitask_fits");
  obs::count("lasso.multitask_iterations", local_info.iterations);
  if (!local_info.converged) obs::count("lasso.multitask_nonconverged");

  // Un-standardise: w_raw(j,t) = w_std(j,t)/std_j; intercepts absorb means.
  Matrix w_raw(d, T);
  std::vector<double> intercepts = y_mean;
  for (std::size_t j = 0; j < d; ++j) {
    if (scaler.is_constant(j)) continue;
    const auto wrow = w.row(j);
    bool active = false;
    for (std::size_t t = 0; t < T; ++t) {
      if (wrow[t] == 0.0) continue;
      active = true;
      const double raw = wrow[t] / scaler.stds()[j];
      w_raw(j, t) = raw;
      intercepts[t] -= raw * scaler.means()[j];
    }
    if (active) ++local_info.active_features;
  }
  if (info != nullptr) *info = local_info;
  return MultiTaskLinearModel(std::move(intercepts), std::move(w_raw));
}

double multitask_lambda_max(const Matrix& x, const Matrix& y) {
  HPCP_REQUIRE(x.rows() == y.rows(), "X and Y row counts must match");
  HPCP_REQUIRE(x.rows() > 0, "empty data");
  const std::size_t n = x.rows();
  const std::size_t T = y.cols();
  const auto dn = static_cast<double>(n);
  const auto scaler = StandardScaler::fit(x);
  const Matrix xs = scaler.transform(x);
  std::vector<double> y_mean(T, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = y.row(r);
    for (std::size_t t = 0; t < T; ++t) y_mean[t] += row[t];
  }
  for (auto& m : y_mean) m /= dn;

  double best = 0.0;
  for (std::size_t j = 0; j < x.cols(); ++j) {
    const auto cj = xs.column(j);
    double norm_sq = 0.0;
    for (std::size_t t = 0; t < T; ++t) {
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) acc += cj[i] * (y(i, t) - y_mean[t]);
      acc /= dn;
      norm_sq += acc * acc;
    }
    best = std::max(best, std::sqrt(norm_sq));
  }
  return best;
}

}  // namespace hpcp
