#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "src/common/serialize.hpp"

/// \file matrix.hpp
/// Dense row-major matrix of doubles. Deliberately small: the library's
/// design matrices are (configurations × features), i.e. thousands by tens,
/// so a cache-friendly row-major layout with straightforward loops is the
/// right tool — no BLAS dependency.

namespace hpcp {

class Matrix {
 public:
  Matrix() = default;

  /// rows × cols matrix, zero-initialised.
  Matrix(std::size_t rows, std::size_t cols);

  /// rows × cols matrix filled with `value`.
  Matrix(std::size_t rows, std::size_t cols, double value);

  /// From nested initializer lists; all rows must have equal width.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access; throws std::out_of_range.
  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// Contiguous view of row r.
  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  /// Copy of column c.
  [[nodiscard]] std::vector<double> column(std::size_t c) const;

  /// Overwrite row r from a span of matching width.
  void set_row(std::size_t r, std::span<const double> values);

  [[nodiscard]] std::span<const double> data() const noexcept { return data_; }
  [[nodiscard]] std::span<double> data() noexcept { return data_; }

  [[nodiscard]] Matrix transposed() const;

  /// this * other; inner dimensions must match.
  [[nodiscard]] Matrix multiply(const Matrix& other) const;

  /// this * v (matrix–vector); v.size() must equal cols().
  [[nodiscard]] std::vector<double> multiply(std::span<const double> v) const;

  /// thisᵀ * this (the Gram matrix), computed without materialising the
  /// transpose.
  [[nodiscard]] Matrix gram() const;

  /// thisᵀ * v; v.size() must equal rows().
  [[nodiscard]] std::vector<double> transpose_multiply(
      std::span<const double> v) const;

  /// Identity matrix of size n.
  [[nodiscard]] static Matrix identity(std::size_t n);

  /// New matrix containing the given subset of this matrix's rows.
  [[nodiscard]] Matrix select_rows(std::span<const std::size_t> idx) const;

  /// Append a column (must match rows(), or set rows for an empty matrix).
  void append_column(std::span<const double> col);

  [[nodiscard]] bool operator==(const Matrix& other) const = default;

  /// Serialization (see src/common/serialize.hpp).
  void save(Serializer& out) const;
  [[nodiscard]] static Matrix load(Deserializer& in);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace hpcp
