#pragma once

#include <span>
#include <vector>

#include "src/linear/matrix.hpp"

/// \file nnls.hpp
/// Non-negative least squares by clamped cyclic coordinate descent.
///
/// Scalability models are sums of cost mechanisms, and costs cannot be
/// negative: fitting them with sign-constrained coefficients is what keeps
/// an extrapolation from being hijacked by collinear basis terms cancelling
/// each other inside the training range and diverging outside it.

namespace hpcp {

struct NnlsOptions {
  std::size_t max_iter = 1000;
  double tol = 1e-12;  ///< stop when no coordinate moves more than tol·|w|
  /// Constrain the intercept to be non-negative too (a constant cost).
  bool nonneg_intercept = true;
};

struct NnlsModel {
  double intercept = 0.0;
  std::vector<double> coef;

  [[nodiscard]] double predict(std::span<const double> x) const;
};

/// Convergence diagnostics: `converged` is false when the iteration cap
/// was hit before the coordinate updates fell below tolerance — the model
/// is still usable (the objective is convex and monotone under CD) but
/// callers building reports should surface it.
struct NnlsFitInfo {
  std::size_t iterations = 0;
  bool converged = false;
};

/// Minimises Σ_i weight_i·(y_i − b − X_i·w)² subject to w ≥ 0 (and b ≥ 0
/// unless disabled). Empty `weights` means uniform. The problem is convex,
/// so coordinate descent with clamping converges to the global optimum.
[[nodiscard]] NnlsModel fit_nnls(const Matrix& x, std::span<const double> y,
                                 std::span<const double> weights = {},
                                 const NnlsOptions& opts = {},
                                 NnlsFitInfo* info = nullptr);

}  // namespace hpcp
