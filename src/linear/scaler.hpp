#pragma once

#include <vector>

#include "src/linear/matrix.hpp"

/// \file scaler.hpp
/// Column-wise standardisation (zero mean, unit population std).
///
/// All penalised linear fits standardise internally so the penalty treats
/// features symmetrically; the fitted coefficients are mapped back to the
/// raw-feature scale before being exposed.

namespace hpcp {

class StandardScaler {
 public:
  /// Learn column means and stds from X. Constant columns get std 1 so they
  /// transform to identically 0 and receive a zero coefficient.
  static StandardScaler fit(const Matrix& x);

  /// Standardise a copy of X (must have the fitted width).
  [[nodiscard]] Matrix transform(const Matrix& x) const;

  /// Standardise one row in place.
  void transform_row(std::span<double> row) const;

  [[nodiscard]] const std::vector<double>& means() const noexcept {
    return mean_;
  }
  [[nodiscard]] const std::vector<double>& stds() const noexcept {
    return std_;
  }
  [[nodiscard]] std::size_t width() const noexcept { return mean_.size(); }

  /// True if column c was constant in the fitted data.
  [[nodiscard]] bool is_constant(std::size_t c) const {
    return constant_.at(c);
  }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
  std::vector<bool> constant_;
};

}  // namespace hpcp
