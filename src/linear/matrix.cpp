#include "src/linear/matrix.hpp"

#include <stdexcept>

#include "src/common/check.hpp"

namespace hpcp {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double value)
    : rows_(rows), cols_(cols), data_(rows * cols, value) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    HPCP_REQUIRE(row.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

std::vector<double> Matrix::column(std::size_t c) const {
  HPCP_REQUIRE(c < cols_, "column index out of range");
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::set_row(std::size_t r, std::span<const double> values) {
  HPCP_REQUIRE(r < rows_, "row index out of range");
  HPCP_REQUIRE(values.size() == cols_, "row width mismatch");
  auto dst = row(r);
  for (std::size_t c = 0; c < cols_; ++c) dst[c] = values[c];
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  HPCP_REQUIRE(cols_ == other.rows_, "inner dimensions must match");
  Matrix out(rows_, other.cols_);
  // i-k-j loop order: streams over `other`'s rows, cache-friendly for
  // row-major storage.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      const auto brow = other.row(k);
      auto orow = out.row(i);
      for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

std::vector<double> Matrix::multiply(std::span<const double> v) const {
  HPCP_REQUIRE(v.size() == cols_, "vector length must match cols");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const auto r = row(i);
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += r[j] * v[j];
    out[i] = acc;
  }
  return out;
}

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const auto r = row(i);
    for (std::size_t a = 0; a < cols_; ++a) {
      const double ra = r[a];
      if (ra == 0.0) continue;
      auto grow = g.row(a);
      for (std::size_t b = a; b < cols_; ++b) grow[b] += ra * r[b];
    }
  }
  for (std::size_t a = 0; a < cols_; ++a) {
    for (std::size_t b = 0; b < a; ++b) g(a, b) = g(b, a);
  }
  return g;
}

std::vector<double> Matrix::transpose_multiply(
    std::span<const double> v) const {
  HPCP_REQUIRE(v.size() == rows_, "vector length must match rows");
  std::vector<double> out(cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double vi = v[i];
    if (vi == 0.0) continue;
    const auto r = row(i);
    for (std::size_t j = 0; j < cols_; ++j) out[j] += r[j] * vi;
  }
  return out;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

Matrix Matrix::select_rows(std::span<const std::size_t> idx) const {
  Matrix out(idx.size(), cols_);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    HPCP_REQUIRE(idx[i] < rows_, "row index out of range");
    out.set_row(i, row(idx[i]));
  }
  return out;
}

void Matrix::append_column(std::span<const double> col) {
  if (empty() && rows_ == 0) {
    rows_ = col.size();
    cols_ = 1;
    data_.assign(col.begin(), col.end());
    return;
  }
  HPCP_REQUIRE(col.size() == rows_, "column length must match rows");
  std::vector<double> next((cols_ + 1) * rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      next[r * (cols_ + 1) + c] = (*this)(r, c);
    }
    next[r * (cols_ + 1) + cols_] = col[r];
  }
  data_ = std::move(next);
  ++cols_;
}

void Matrix::save(Serializer& out) const {
  out.tag("matrix");
  out.write(rows_);
  out.write(cols_);
  out.write(data_);
}

Matrix Matrix::load(Deserializer& in) {
  in.expect_tag("matrix");
  Matrix m;
  m.rows_ = in.read_size();
  m.cols_ = in.read_size();
  m.data_ = in.read_doubles();
  HPCP_REQUIRE(m.data_.size() == m.rows_ * m.cols_,
               "matrix archive size mismatch");
  return m;
}

}  // namespace hpcp
