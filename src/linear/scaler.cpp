#include "src/linear/scaler.hpp"

#include <cmath>

#include "src/common/check.hpp"

namespace hpcp {

StandardScaler StandardScaler::fit(const Matrix& x) {
  HPCP_REQUIRE(x.rows() > 0, "cannot fit scaler on empty matrix");
  StandardScaler s;
  const std::size_t d = x.cols();
  s.mean_.assign(d, 0.0);
  s.std_.assign(d, 0.0);
  s.constant_.assign(d, false);
  const auto n = static_cast<double>(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < d; ++c) s.mean_[c] += row[c];
  }
  for (auto& m : s.mean_) m /= n;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < d; ++c) {
      const double dlt = row[c] - s.mean_[c];
      s.std_[c] += dlt * dlt;
    }
  }
  for (std::size_t c = 0; c < d; ++c) {
    s.std_[c] = std::sqrt(s.std_[c] / n);
    if (s.std_[c] <= 1e-12) {
      s.std_[c] = 1.0;
      s.constant_[c] = true;
    }
  }
  return s;
}

Matrix StandardScaler::transform(const Matrix& x) const {
  HPCP_REQUIRE(x.cols() == width(), "scaler width mismatch");
  Matrix out = x;
  for (std::size_t r = 0; r < out.rows(); ++r) transform_row(out.row(r));
  return out;
}

void StandardScaler::transform_row(std::span<double> row) const {
  HPCP_REQUIRE(row.size() == width(), "scaler width mismatch");
  for (std::size_t c = 0; c < row.size(); ++c) {
    row[c] = constant_[c] ? 0.0 : (row[c] - mean_[c]) / std_[c];
  }
}

}  // namespace hpcp
