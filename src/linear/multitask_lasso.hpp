#pragma once

#include <span>
#include <vector>

#include "src/linear/matrix.hpp"

/// \file multitask_lasso.hpp
/// Multitask lasso: joint L2,1-penalised least squares across T related
/// regression tasks that share the same design matrix.
///
/// Objective (scikit-learn's MultiTaskLasso):
///   min_W (1/2n)·||Y − XW − b||_F² + λ·Σ_j ||W_{j·}||₂
///
/// The ℓ2,1 penalty makes entire *rows* of W (one row per feature, one
/// column per task) go to zero together, so all tasks share one sparse
/// support. In this library the tasks are the paper's target (large) scales
/// and the features are the small-scale performance predictions — shared
/// support encodes that the same small scales are informative for every
/// large scale, which is the paper's mechanism for damping interpolation
/// noise.

namespace hpcp {

struct MultiTaskLassoOptions {
  double lambda = 0.1;
  std::size_t max_iter = 1000;
  double tol = 1e-7;
};

struct MultiTaskFitInfo {
  std::size_t iterations = 0;
  bool converged = false;
  std::size_t active_features = 0;  ///< rows of W with a nonzero norm
};

/// A fitted multitask linear model on raw features: for task t,
/// y_t ≈ intercept[t] + Σ_j weights(j, t)·x_j.
class MultiTaskLinearModel {
 public:
  MultiTaskLinearModel() = default;
  MultiTaskLinearModel(std::vector<double> intercepts, Matrix weights);

  [[nodiscard]] std::size_t tasks() const noexcept { return intercepts_.size(); }
  [[nodiscard]] std::size_t features() const noexcept { return weights_.rows(); }

  /// Predictions for all tasks given one feature vector.
  [[nodiscard]] std::vector<double> predict(std::span<const double> x) const;

  /// Prediction for a single task.
  [[nodiscard]] double predict_task(std::span<const double> x,
                                    std::size_t task) const;

  /// Row-wise prediction matrix (rows of X × tasks).
  [[nodiscard]] Matrix predict(const Matrix& x) const;

  [[nodiscard]] const Matrix& weights() const noexcept { return weights_; }
  [[nodiscard]] const std::vector<double>& intercepts() const noexcept {
    return intercepts_;
  }

  /// Feature indices with a nonzero coefficient row (the shared support).
  [[nodiscard]] std::vector<std::size_t> support() const;

 private:
  std::vector<double> intercepts_;
  Matrix weights_;  // features × tasks
};

/// Fit by block coordinate descent over feature rows. Y is rows(X) × T.
[[nodiscard]] MultiTaskLinearModel fit_multitask_lasso(
    const Matrix& x, const Matrix& y, const MultiTaskLassoOptions& opts,
    MultiTaskFitInfo* info = nullptr);

/// Smallest λ with an all-zero solution:
/// λ_max = max_j ||x_jᵀ·Y_c||₂ / n on standardised features.
[[nodiscard]] double multitask_lambda_max(const Matrix& x, const Matrix& y);

}  // namespace hpcp
