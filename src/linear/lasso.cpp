#include "src/linear/lasso.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/check.hpp"
#include "src/common/stats.hpp"
#include "src/linear/scaler.hpp"
#include "src/obs/obs.hpp"

namespace hpcp {

namespace {
double soft_threshold(double v, double t) noexcept {
  if (v > t) return v - t;
  if (v < -t) return v + t;
  return 0.0;
}
}  // namespace

LinearModel fit_lasso(const Matrix& x, std::span<const double> y,
                      const LassoOptions& opts, LassoFitInfo* info) {
  const obs::Span span("lasso.fit");
  HPCP_REQUIRE(x.rows() == y.size(), "row count must match target length");
  HPCP_REQUIRE(x.rows() > 0, "cannot fit on empty data");
  HPCP_REQUIRE(opts.lambda >= 0.0, "lambda must be non-negative");

  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const auto dn = static_cast<double>(n);

  const auto scaler = StandardScaler::fit(x);
  const Matrix xs = scaler.transform(x);
  const double y_mean = mean(y);

  // Column views of the standardised design: coordinate descent touches one
  // column at a time, so store column-major copies.
  std::vector<std::vector<double>> col(d);
  std::vector<double> col_sq_norm(d);  // (1/n)·x_jᵀx_j  (1 unless constant)
  for (std::size_t j = 0; j < d; ++j) {
    col[j] = xs.column(j);
    double s = 0.0;
    for (const double v : col[j]) s += v * v;
    col_sq_norm[j] = s / dn;
  }

  std::vector<double> w(d, 0.0);
  std::vector<double> residual(n);
  for (std::size_t i = 0; i < n; ++i) residual[i] = y[i] - y_mean;

  LassoFitInfo local_info;
  for (std::size_t it = 0; it < opts.max_iter; ++it) {
    double max_delta = 0.0;
    double max_w = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      if (col_sq_norm[j] <= 0.0) continue;  // constant column stays at 0
      const double old_wj = w[j];
      // rho = (1/n)·x_jᵀ(residual + x_j·w_j)
      double rho = 0.0;
      for (std::size_t i = 0; i < n; ++i) rho += col[j][i] * residual[i];
      rho = rho / dn + col_sq_norm[j] * old_wj;
      const double new_wj = soft_threshold(rho, opts.lambda) / col_sq_norm[j];
      if (new_wj != old_wj) {
        const double delta = new_wj - old_wj;
        for (std::size_t i = 0; i < n; ++i) residual[i] -= delta * col[j][i];
        w[j] = new_wj;
        max_delta = std::max(max_delta, std::abs(delta));
      }
      max_w = std::max(max_w, std::abs(w[j]));
    }
    local_info.iterations = it + 1;
    if (max_delta <= opts.tol * std::max(max_w, 1e-12)) {
      local_info.converged = true;
      break;
    }
  }

  LinearModel model;
  model.coef.assign(d, 0.0);
  model.intercept = y_mean;
  for (std::size_t c = 0; c < d; ++c) {
    if (scaler.is_constant(c) || w[c] == 0.0) continue;
    model.coef[c] = w[c] / scaler.stds()[c];
    model.intercept -= model.coef[c] * scaler.means()[c];
    ++local_info.nonzeros;
  }
  obs::count("lasso.single_fits");
  obs::count("lasso.single_iterations", local_info.iterations);
  if (info != nullptr) *info = local_info;
  return model;
}

double lasso_lambda_max(const Matrix& x, std::span<const double> y) {
  HPCP_REQUIRE(x.rows() == y.size(), "row count must match target length");
  const auto scaler = StandardScaler::fit(x);
  const Matrix xs = scaler.transform(x);
  const double y_mean = mean(y);
  std::vector<double> yc(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) yc[i] = y[i] - y_mean;
  const auto corr = xs.transpose_multiply(yc);
  double best = 0.0;
  for (const double c : corr) best = std::max(best, std::abs(c));
  return best / static_cast<double>(x.rows());
}

std::vector<double> lambda_grid(double lambda_max, std::size_t count,
                                double ratio) {
  HPCP_REQUIRE(count >= 2, "lambda grid needs at least 2 points");
  HPCP_REQUIRE(lambda_max > 0.0, "lambda_max must be positive");
  HPCP_REQUIRE(ratio > 0.0 && ratio < 1.0, "ratio must be in (0,1)");
  std::vector<double> grid(count);
  const double log_hi = std::log(lambda_max);
  const double log_lo = std::log(lambda_max * ratio);
  for (std::size_t i = 0; i < count; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(count - 1);
    grid[i] = std::exp(log_hi + t * (log_lo - log_hi));
  }
  return grid;
}

}  // namespace hpcp
