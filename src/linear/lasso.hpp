#pragma once

#include <span>

#include "src/linear/matrix.hpp"
#include "src/linear/ols.hpp"

/// \file lasso.hpp
/// L1-penalised least squares via cyclic coordinate descent.
///
/// Objective (matching scikit-learn's parameterisation):
///   min_w (1/2n)·||y − Xw − b||² + λ·||w||₁
/// Features are standardised internally; the intercept is unpenalised.

namespace hpcp {

struct LassoOptions {
  double lambda = 0.1;     ///< penalty strength λ ≥ 0
  std::size_t max_iter = 1000;
  double tol = 1e-7;       ///< stop when max coefficient change < tol·max|w|
};

struct LassoFitInfo {
  std::size_t iterations = 0;
  bool converged = false;
  std::size_t nonzeros = 0;
};

/// Fit a lasso model; optionally reports convergence diagnostics.
[[nodiscard]] LinearModel fit_lasso(const Matrix& x, std::span<const double> y,
                                    const LassoOptions& opts,
                                    LassoFitInfo* info = nullptr);

/// Smallest λ for which the lasso solution is all-zero:
/// λ_max = max_j |x_jᵀ y_c| / n on standardised features.
[[nodiscard]] double lasso_lambda_max(const Matrix& x,
                                      std::span<const double> y);

/// Log-spaced λ grid of `count` values from λ_max down to ratio·λ_max.
[[nodiscard]] std::vector<double> lambda_grid(double lambda_max,
                                              std::size_t count = 30,
                                              double ratio = 1e-3);

}  // namespace hpcp
