#include "src/linear/cv.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "src/common/check.hpp"

namespace hpcp {

std::vector<std::size_t> kfold_assignments(std::size_t n, std::size_t k,
                                           Rng& rng) {
  HPCP_REQUIRE(k >= 2, "need at least 2 folds");
  HPCP_REQUIRE(n >= k, "need at least one row per fold");
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  std::vector<std::size_t> fold(n);
  for (std::size_t i = 0; i < n; ++i) fold[order[i]] = i % k;
  return fold;
}

namespace {

struct FoldSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

std::vector<FoldSplit> make_splits(const std::vector<std::size_t>& fold,
                                   std::size_t k) {
  std::vector<FoldSplit> splits(k);
  for (std::size_t i = 0; i < fold.size(); ++i) {
    for (std::size_t f = 0; f < k; ++f) {
      (fold[i] == f ? splits[f].test : splits[f].train).push_back(i);
    }
  }
  return splits;
}

}  // namespace

LinearModel fit_lasso_cv(const Matrix& x, std::span<const double> y,
                         std::size_t folds, Rng& rng, CvResult* result,
                         std::size_t grid_size) {
  HPCP_REQUIRE(x.rows() == y.size(), "row count must match target length");
  const double lmax = lasso_lambda_max(x, y);
  if (lmax <= 0.0) {
    // Target is constant (or orthogonal to all features): intercept-only.
    LinearModel m = fit_lasso(x, y, {.lambda = 1.0});
    if (result != nullptr) *result = {};
    return m;
  }
  const auto grid = lambda_grid(lmax, grid_size);
  const auto fold = kfold_assignments(x.rows(), folds, rng);
  const auto splits = make_splits(fold, folds);

  CvResult cv;
  cv.lambdas = grid;
  cv.cv_mse.assign(grid.size(), 0.0);
  for (std::size_t g = 0; g < grid.size(); ++g) {
    double mse_sum = 0.0;
    for (const auto& split : splits) {
      const Matrix xtr = x.select_rows(split.train);
      std::vector<double> ytr(split.train.size());
      for (std::size_t i = 0; i < split.train.size(); ++i) {
        ytr[i] = y[split.train[i]];
      }
      const LinearModel m = fit_lasso(xtr, ytr, {.lambda = grid[g]});
      double mse = 0.0;
      for (const std::size_t i : split.test) {
        const double e = m.predict(x.row(i)) - y[i];
        mse += e * e;
      }
      mse_sum += mse / static_cast<double>(split.test.size());
    }
    cv.cv_mse[g] = mse_sum / static_cast<double>(folds);
  }
  const auto best = std::min_element(cv.cv_mse.begin(), cv.cv_mse.end());
  cv.best_lambda = grid[static_cast<std::size_t>(best - cv.cv_mse.begin())];
  if (result != nullptr) *result = cv;
  return fit_lasso(x, y, {.lambda = cv.best_lambda});
}

MultiTaskLinearModel fit_multitask_lasso_cv(const Matrix& x, const Matrix& y,
                                            std::size_t folds, Rng& rng,
                                            CvResult* result,
                                            std::size_t grid_size) {
  HPCP_REQUIRE(x.rows() == y.rows(), "X and Y row counts must match");
  const double lmax = multitask_lambda_max(x, y);
  if (lmax <= 0.0) {
    MultiTaskLinearModel m = fit_multitask_lasso(x, y, {.lambda = 1.0});
    if (result != nullptr) *result = {};
    return m;
  }
  const auto grid = lambda_grid(lmax, grid_size);
  const auto fold = kfold_assignments(x.rows(), folds, rng);
  const auto splits = make_splits(fold, folds);

  CvResult cv;
  cv.lambdas = grid;
  cv.cv_mse.assign(grid.size(), 0.0);
  for (std::size_t g = 0; g < grid.size(); ++g) {
    double mse_sum = 0.0;
    for (const auto& split : splits) {
      const Matrix xtr = x.select_rows(split.train);
      const Matrix ytr = y.select_rows(split.train);
      const auto m = fit_multitask_lasso(xtr, ytr, {.lambda = grid[g]});
      double mse = 0.0;
      for (const std::size_t i : split.test) {
        const auto pred = m.predict(x.row(i));
        for (std::size_t t = 0; t < y.cols(); ++t) {
          const double e = pred[t] - y(i, t);
          mse += e * e;
        }
      }
      mse_sum += mse / static_cast<double>(split.test.size() * y.cols());
    }
    cv.cv_mse[g] = mse_sum / static_cast<double>(folds);
  }
  const auto best = std::min_element(cv.cv_mse.begin(), cv.cv_mse.end());
  cv.best_lambda = grid[static_cast<std::size_t>(best - cv.cv_mse.begin())];
  if (result != nullptr) *result = cv;
  return fit_multitask_lasso(x, y, {.lambda = cv.best_lambda});
}

}  // namespace hpcp
