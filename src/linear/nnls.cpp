#include "src/linear/nnls.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/check.hpp"

namespace hpcp {

double NnlsModel::predict(std::span<const double> x) const {
  HPCP_REQUIRE(x.size() == coef.size(), "feature width mismatch");
  double acc = intercept;
  for (std::size_t j = 0; j < x.size(); ++j) acc += coef[j] * x[j];
  return acc;
}

NnlsModel fit_nnls(const Matrix& x, std::span<const double> y,
                   std::span<const double> weights, const NnlsOptions& opts,
                   NnlsFitInfo* info) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  HPCP_REQUIRE(n == y.size(), "row count must match target length");
  HPCP_REQUIRE(n > 0, "cannot fit on empty data");
  HPCP_REQUIRE(weights.empty() || weights.size() == n,
               "one weight per sample required");

  std::vector<double> w(n, 1.0);
  if (!weights.empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      HPCP_REQUIRE(weights[i] >= 0.0, "weights must be non-negative");
      w[i] = weights[i];
    }
  }

  // Weighted column inner products with themselves.
  std::vector<double> col_sq(d, 0.0);
  double ones_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = x.row(i);
    for (std::size_t j = 0; j < d; ++j) col_sq[j] += w[i] * row[j] * row[j];
    ones_sq += w[i];
  }

  NnlsModel model;
  model.coef.assign(d, 0.0);
  std::vector<double> residual(y.begin(), y.end());  // y − b − Xw

  NnlsFitInfo local_info;
  for (std::size_t it = 0; it < opts.max_iter; ++it) {
    double max_delta = 0.0;
    double max_coef = 0.0;

    // Intercept coordinate.
    {
      double num = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        num += w[i] * (residual[i] + model.intercept);
      }
      double b = ones_sq > 0.0 ? num / ones_sq : 0.0;
      if (opts.nonneg_intercept) b = std::max(b, 0.0);
      const double delta = b - model.intercept;
      if (delta != 0.0) {
        for (auto& r : residual) r -= delta;
        model.intercept = b;
        max_delta = std::max(max_delta, std::abs(delta));
      }
      max_coef = std::max(max_coef, std::abs(b));
    }

    // Feature coordinates.
    for (std::size_t j = 0; j < d; ++j) {
      if (col_sq[j] <= 0.0) continue;
      double num = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        num += w[i] * x(i, j) * (residual[i] + x(i, j) * model.coef[j]);
      }
      const double cj = std::max(num / col_sq[j], 0.0);
      const double delta = cj - model.coef[j];
      if (delta != 0.0) {
        for (std::size_t i = 0; i < n; ++i) residual[i] -= delta * x(i, j);
        model.coef[j] = cj;
        max_delta = std::max(max_delta, std::abs(delta));
      }
      max_coef = std::max(max_coef, cj);
    }

    local_info.iterations = it + 1;
    if (max_delta <= opts.tol * std::max(max_coef, 1e-12)) {
      local_info.converged = true;
      break;
    }
  }
  if (info != nullptr) *info = local_info;
  return model;
}

}  // namespace hpcp
