#include "src/linear/ols.hpp"

#include "src/common/check.hpp"
#include "src/common/stats.hpp"
#include "src/linear/scaler.hpp"
#include "src/linear/solve.hpp"

namespace hpcp {

double LinearModel::predict(std::span<const double> x) const {
  HPCP_REQUIRE(x.size() == coef.size(), "feature width mismatch");
  double acc = intercept;
  for (std::size_t i = 0; i < x.size(); ++i) acc += coef[i] * x[i];
  return acc;
}

std::vector<double> LinearModel::predict(const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict(x.row(r));
  return out;
}

LinearModel fit_ridge(const Matrix& x, std::span<const double> y,
                      double lambda) {
  HPCP_REQUIRE(x.rows() == y.size(), "row count must match target length");
  HPCP_REQUIRE(x.rows() > 0, "cannot fit on empty data");
  HPCP_REQUIRE(lambda >= 0.0, "lambda must be non-negative");

  const auto scaler = StandardScaler::fit(x);
  const Matrix xs = scaler.transform(x);
  const double y_mean = mean(y);
  std::vector<double> yc(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) yc[i] = y[i] - y_mean;

  // Normal equations on standardised data: (XᵀX/n + λI) w = Xᵀy/n.
  const auto n = static_cast<double>(x.rows());
  Matrix a = xs.gram();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) a(i, j) /= n;
    a(i, i) += lambda + 1e-10;
  }
  auto b = xs.transpose_multiply(yc);
  for (auto& v : b) v /= n;
  const auto w_std = cholesky_solve(a, b);

  // Map standardised coefficients back to the raw-feature scale.
  LinearModel model;
  model.coef.assign(x.cols(), 0.0);
  model.intercept = y_mean;
  for (std::size_t c = 0; c < x.cols(); ++c) {
    if (scaler.is_constant(c)) continue;
    model.coef[c] = w_std[c] / scaler.stds()[c];
    model.intercept -= model.coef[c] * scaler.means()[c];
  }
  return model;
}

LinearModel fit_ols(const Matrix& x, std::span<const double> y) {
  return fit_ridge(x, y, 0.0);
}

}  // namespace hpcp
