#include "src/linear/solve.hpp"

#include <cmath>

#include "src/common/check.hpp"

namespace hpcp {

Matrix cholesky_factor(Matrix a) {
  HPCP_REQUIRE(a.rows() == a.cols(), "Cholesky requires a square matrix");
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= a(j, k) * a(j, k);
    HPCP_REQUIRE(diag > 0.0, "matrix is not positive definite");
    const double ljj = std::sqrt(diag);
    a(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= a(i, k) * a(j, k);
      a(i, j) = v / ljj;
    }
    for (std::size_t c = j + 1; c < n; ++c) a(j, c) = 0.0;
  }
  return a;
}

std::vector<double> forward_substitute(const Matrix& l,
                                       std::span<const double> b) {
  const std::size_t n = l.rows();
  HPCP_REQUIRE(b.size() == n, "rhs length must match matrix size");
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= l(i, k) * y[k];
    y[i] = v / l(i, i);
  }
  return y;
}

std::vector<double> back_substitute_transposed(const Matrix& l,
                                               std::span<const double> y) {
  const std::size_t n = l.rows();
  HPCP_REQUIRE(y.size() == n, "rhs length must match matrix size");
  std::vector<double> x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double v = y[i];
    for (std::size_t k = i + 1; k < n; ++k) v -= l(k, i) * x[k];
    x[i] = v / l(i, i);
  }
  return x;
}

std::vector<double> cholesky_solve(const Matrix& a, std::span<const double> b) {
  const Matrix l = cholesky_factor(a);
  const auto y = forward_substitute(l, b);
  return back_substitute_transposed(l, y);
}

Matrix cholesky_solve_multi(const Matrix& a, const Matrix& b) {
  HPCP_REQUIRE(a.rows() == b.rows(), "dimension mismatch");
  const Matrix l = cholesky_factor(a);
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    const auto col = b.column(c);
    const auto y = forward_substitute(l, col);
    const auto xc = back_substitute_transposed(l, y);
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = xc[r];
  }
  return x;
}

}  // namespace hpcp
