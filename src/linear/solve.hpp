#pragma once

#include <vector>

#include "src/linear/matrix.hpp"

/// \file solve.hpp
/// Direct solvers for the symmetric positive-definite systems produced by
/// least-squares normal equations.

namespace hpcp {

/// In-place lower-triangular Cholesky factor L of a symmetric
/// positive-definite matrix A (A = L·Lᵀ). The strict upper triangle of the
/// result is zeroed. Throws std::invalid_argument if A is not square or a
/// non-positive pivot is met (A not SPD within tolerance).
[[nodiscard]] Matrix cholesky_factor(Matrix a);

/// Solves A x = b for SPD A via Cholesky.
[[nodiscard]] std::vector<double> cholesky_solve(const Matrix& a,
                                                 std::span<const double> b);

/// Solves A X = B column-by-column for SPD A (B is rhs-per-column).
[[nodiscard]] Matrix cholesky_solve_multi(const Matrix& a, const Matrix& b);

/// Forward substitution: solves L y = b for lower-triangular L.
[[nodiscard]] std::vector<double> forward_substitute(const Matrix& l,
                                                     std::span<const double> b);

/// Back substitution: solves Lᵀ x = y for lower-triangular L.
[[nodiscard]] std::vector<double> back_substitute_transposed(
    const Matrix& l, std::span<const double> y);

}  // namespace hpcp
