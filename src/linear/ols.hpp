#pragma once

#include <span>
#include <vector>

#include "src/linear/matrix.hpp"

/// \file ols.hpp
/// Ordinary least squares and ridge regression on raw features.

namespace hpcp {

/// A fitted linear model y ≈ intercept + coef · x on *raw* (unstandardised)
/// features.
struct LinearModel {
  double intercept = 0.0;
  std::vector<double> coef;

  [[nodiscard]] double predict(std::span<const double> x) const;
  [[nodiscard]] std::vector<double> predict(const Matrix& x) const;
};

/// OLS via ridge with a tiny jitter (1e-10) for numerical robustness against
/// collinear design matrices; exact OLS in the well-conditioned case.
[[nodiscard]] LinearModel fit_ols(const Matrix& x, std::span<const double> y);

/// Ridge regression: minimises (1/2n)||y − Xw − b||² + (λ/2)||w||² on
/// standardised features; the intercept is not penalised. λ ≥ 0.
[[nodiscard]] LinearModel fit_ridge(const Matrix& x, std::span<const double> y,
                                    double lambda);

}  // namespace hpcp
