#pragma once

#include <span>
#include <vector>

#include "src/common/rng.hpp"
#include "src/linear/lasso.hpp"
#include "src/linear/multitask_lasso.hpp"

/// \file cv.hpp
/// K-fold cross-validation for penalty selection.

namespace hpcp {

/// Shuffled k-fold assignment: returns a fold id in [0, k) per row.
[[nodiscard]] std::vector<std::size_t> kfold_assignments(std::size_t n,
                                                         std::size_t k,
                                                         Rng& rng);

struct CvResult {
  double best_lambda = 0.0;
  std::vector<double> lambdas;
  std::vector<double> cv_mse;  ///< mean held-out MSE per lambda
};

/// Selects λ for the single-task lasso by k-fold CV over a log-spaced grid
/// derived from λ_max, then refits on all data.
[[nodiscard]] LinearModel fit_lasso_cv(const Matrix& x,
                                       std::span<const double> y,
                                       std::size_t folds, Rng& rng,
                                       CvResult* result = nullptr,
                                       std::size_t grid_size = 30);

/// Same for the multitask lasso; MSE is averaged over all tasks.
[[nodiscard]] MultiTaskLinearModel fit_multitask_lasso_cv(
    const Matrix& x, const Matrix& y, std::size_t folds, Rng& rng,
    CvResult* result = nullptr, std::size_t grid_size = 30);

}  // namespace hpcp
