#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

/// \file train_report.hpp
/// Structured account of what the model training actually did.
///
/// The extrapolation level degrades gracefully instead of failing: when the
/// preferred per-cluster multitask lasso cannot produce a usable scaling
/// law, it walks a fallback chain (see FallbackStage). Each step trades
/// statistical strength for robustness, and silent degradation would make
/// predictions look authoritative when they are not — so every cluster
/// records which stage it landed on and why, and TwoLevelModel::fit_checked
/// hands the whole account back to the caller.

namespace hpcp {

/// The degradation ladder, strongest first. Training tries each stage in
/// order and stops at the first one that yields a usable model.
enum class FallbackStage {
  /// Nominal path: shared-support multitask lasso over the cluster's
  /// configurations (the paper's method).
  ClusterMultitask,
  /// The cluster was unusable (too few members, solver did not converge,
  /// degenerate λ search): reuse the support selected by one multitask
  /// lasso pooled over *all* configurations.
  PooledMultitask,
  /// No multitask support anywhere: fit a log–log power law t ≈ a·p^b to
  /// each query curve at prediction time (per-configuration OLS).
  PerConfigOls,
  /// Even a power law is unidentifiable (e.g. a single distinct small
  /// scale): fall back to the perfectly-parallel Amdahl-style preset,
  /// support = {"1/p"} plus an intercept.
  AmdahlPreset,
};

[[nodiscard]] const char* fallback_stage_name(FallbackStage stage) noexcept;

/// What training did for one scaling-behaviour cluster.
struct ClusterTrainInfo {
  std::size_t cluster = 0;
  std::size_t num_members = 0;
  FallbackStage stage = FallbackStage::ClusterMultitask;
  /// Empty on the nominal path; otherwise why the chain advanced.
  std::string reason;
  /// Selected basis-term indices (empty for PerConfigOls — its support is
  /// chosen per query at prediction time).
  std::vector<std::size_t> support;
  double lambda = 0.0;  ///< chosen ℓ2,1 penalty (0 when not applicable)
};

/// Wall-clock seconds one named pipeline stage took during fit. Stage
/// names follow the span convention of src/obs (dotted lowercase), e.g.
/// "interpolation.fit" or "extrapolation.support"; "total" covers the
/// whole fit. Always recorded — the clock reads are stage-grained and
/// free next to the work they measure — independent of whether span
/// tracing is enabled.
struct StageTiming {
  std::string stage;
  double seconds = 0.0;
};

/// Full training account for a fitted two-level model.
struct TrainReport {
  std::size_t num_configs = 0;
  std::size_t num_clusters = 0;
  /// Worker threads the parallel fit stages ran on (0 before any fit). The
  /// fitted model is bitwise identical for any value — this is purely a
  /// wall-time diagnostic next to `timings`.
  std::size_t threads = 0;
  /// Interpolation forests that took the warm-start path (reused a prior
  /// split structure instead of a full refit); 0 for a cold fit.
  std::size_t warm_scales = 0;
  bool clustering_converged = true;
  std::vector<ClusterTrainInfo> clusters;
  /// Non-fatal oddities (solver iteration caps, re-clustering retries...)
  /// that did not advance the fallback chain but deserve eyeballs.
  std::vector<std::string> warnings;
  /// Per-stage wall times, in execution order ("total" last).
  std::vector<StageTiming> timings;

  /// True when every cluster trained on the nominal path and no warnings
  /// were recorded.
  [[nodiscard]] bool fully_nominal() const noexcept;

  /// Count of clusters that landed on `stage`.
  [[nodiscard]] std::size_t count_stage(FallbackStage stage) const noexcept;

  /// Seconds recorded for `stage`, or 0.0 when the stage is absent.
  [[nodiscard]] double stage_seconds(std::string_view stage) const noexcept;

  /// Human-readable multi-line summary for logs and the CLI.
  [[nodiscard]] std::string summary() const;
};

}  // namespace hpcp
