#include "src/core/two_level_model.hpp"

#include <bit>
#include <cmath>
#include <fstream>
#include <optional>

#include "src/common/check.hpp"
#include "src/common/io.hpp"
#include "src/common/stats.hpp"
#include "src/obs/obs.hpp"

namespace hpcp {

void TwoLevelModel::fit(const ExtrapolationProblem& problem, Rng& rng) {
  auto result = fit_checked(problem, rng);
  if (!result) throw_error(result.error());
}

Expected<TrainReport> TwoLevelModel::fit_checked(
    const ExtrapolationProblem& problem, Rng& rng,
    const FitOptions& fit_opts) {
  const obs::Span fit_span("twolevel.fit");
  obs::count("twolevel.fits");
  const obs::Stopwatch total_watch;
  std::vector<StageTiming> timings;

  // threads == 0 → the shared hardware-sized pool; otherwise a dedicated
  // pool of exactly the requested width, torn down when the fit returns.
  std::optional<ThreadPool> local_pool;
  ThreadPool* pool = nullptr;
  if (fit_opts.threads > 0) {
    local_pool.emplace(fit_opts.threads);
    pool = &*local_pool;
  }
  const std::size_t effective_threads =
      pool != nullptr ? pool->size() : global_thread_pool().size();

  {
    const obs::Span span("twolevel.validate");
    const obs::Stopwatch watch;
    // The problem sits at the trust boundary (it is distilled from history
    // files): shape and value defects come back as typed errors, not throws.
    try {
      problem.validate();
    } catch (const std::exception& e) {
      return Error{ErrorCode::BadData, e.what(), "problem validation"};
    }
    if (problem.num_configs() == 0) {
      return Error{ErrorCode::Degenerate,
                   "no complete training configurations survived ingestion",
                   ""};
    }
    for (std::size_t r = 0; r < problem.train_configs.rows(); ++r) {
      for (std::size_t c = 0; c < problem.train_configs.cols(); ++c) {
        if (!std::isfinite(problem.train_configs(r, c))) {
          return Error{ErrorCode::BadData, "non-finite input parameter",
                       "config " + std::to_string(r) + ", param " +
                           std::to_string(c)};
        }
      }
      for (std::size_t s = 0; s < problem.train_small_times.cols(); ++s) {
        const double t = problem.train_small_times(r, s);
        if (!std::isfinite(t) || t <= 0.0) {
          return Error{ErrorCode::BadData,
                       "small-scale runtime must be finite and positive",
                       "config " + std::to_string(r) + ", scale index " +
                           std::to_string(s)};
        }
      }
    }
    timings.push_back({"twolevel.validate", watch.seconds()});
  }

  std::size_t warm_scales = 0;
  {
    const obs::Span span("interpolation.fit");
    const obs::Stopwatch watch;
    interpolation_ =
        InterpolationLevel(opts_.forest, opts_.log_interpolation_target);
    const InterpolationLevel* warm =
        fit_opts.warm_start != nullptr &&
                fit_opts.warm_start->interpolation().fitted()
            ? &fit_opts.warm_start->interpolation()
            : nullptr;
    warm_scales = interpolation_.fit(problem, rng, pool, warm);
    timings.push_back({"interpolation.fit", watch.seconds()});
  }

  // The extrapolation level learns its per-cluster scaling laws from the
  // interpolation level's *predicted* curves (paper) so that its inputs
  // have the same statistical character at training and deployment, or
  // from measured curves (ablation).
  Matrix curves;
  {
    const obs::Span span("interpolation.predict_curves");
    const obs::Stopwatch watch;
    curves = opts_.train_on_predictions
                 ? interpolation_.predict_curves(problem.train_configs)
                 : problem.train_small_times;
    timings.push_back({"interpolation.predict_curves", watch.seconds()});
  }

  {
    const obs::Span span("extrapolation.fit");
    const obs::Stopwatch watch;
    extrapolation_ = ExtrapolationLevel(opts_.extrapolation);
    extrapolation_.fit(curves, problem.small_scales, problem.target_scales,
                       rng, &train_report_, pool);
    timings.push_back({"extrapolation.fit", watch.seconds()});
  }
  calibration_log_ratios_.assign(extrapolation_.num_clusters(), {});

  // The extrapolation fit appended its sub-stage timings to the (reset)
  // report; put the outer stages first and close with the fit total.
  train_report_.threads = effective_threads;
  train_report_.warm_scales = warm_scales;
  obs::gauge_set("train.threads", static_cast<double>(effective_threads));
  timings.insert(timings.end(), train_report_.timings.begin(),
                 train_report_.timings.end());
  timings.push_back({"total", total_watch.seconds()});
  train_report_.timings = std::move(timings);
  if (obs::metrics_enabled()) {
    for (const auto& t : train_report_.timings) {
      obs::observe("twolevel.stage_seconds", t.seconds,
                   obs::default_time_bounds(), {{"stage", t.stage}});
    }
  }
  return train_report_;
}

double TwoLevelModel::calibration_factor(std::size_t cluster) const {
  if (cluster >= calibration_log_ratios_.size() ||
      calibration_log_ratios_[cluster].empty()) {
    return 1.0;
  }
  // Robust, conservative correction: the *median* log-ratio (one outlier
  // run must not swing the factor), shrunk toward no-correction while
  // observations are few — n/(n+2) weighting, i.e. one observation moves a
  // third of the way, five observations ~70%.
  const auto& ratios = calibration_log_ratios_[cluster];
  const double med = median(ratios);
  const auto n = static_cast<double>(ratios.size());
  return std::exp(med * n / (n + 2.0));
}

void TwoLevelModel::calibrate(std::span<const double> params,
                              std::size_t nprocs, double measured_runtime) {
  HPCP_REQUIRE(extrapolation_.fitted(), "calibrate before fit");
  HPCP_REQUIRE(measured_runtime > 0.0, "measured runtime must be positive");
  const auto curve = interpolation_.predict_curve(params);
  const std::size_t cluster = extrapolation_.assign_cluster(curve);
  const double raw = extrapolation_.predict_at_scale(curve, nprocs);
  calibration_log_ratios_[cluster].push_back(
      std::log(measured_runtime / raw));
}

void TwoLevelModel::clear_calibration() {
  for (auto& ratios : calibration_log_ratios_) ratios.clear();
}

std::size_t TwoLevelModel::num_calibration_points() const noexcept {
  std::size_t n = 0;
  for (const auto& ratios : calibration_log_ratios_) n += ratios.size();
  return n;
}

std::vector<double> TwoLevelModel::predict_scaling_curve(
    std::span<const double> params,
    std::span<const std::size_t> scales) const {
  HPCP_REQUIRE(extrapolation_.fitted(), "predict before fit");
  const auto curve = interpolation_.predict_curve(params);
  return predict_curve_at_scales(curve, scales);
}

std::vector<double> TwoLevelModel::predict_curve_at_scales(
    std::span<const double> small_curve,
    std::span<const std::size_t> scales) const {
  HPCP_REQUIRE(extrapolation_.fitted(), "predict before fit");
  const double factor =
      calibration_factor(extrapolation_.assign_cluster(small_curve));
  std::vector<double> out(scales.size());
  for (std::size_t i = 0; i < scales.size(); ++i) {
    out[i] = factor * extrapolation_.predict_at_scale(small_curve, scales[i]);
  }
  return out;
}

std::vector<double> TwoLevelModel::small_scale_curve(
    std::span<const double> params,
    std::span<const double> measured_small_times) const {
  HPCP_REQUIRE(interpolation_.fitted(), "predict before fit");
  if (opts_.prefer_measured_curve && !measured_small_times.empty()) {
    HPCP_REQUIRE(measured_small_times.size() == interpolation_.num_scales(),
                 "measured curve width mismatch");
    return {measured_small_times.begin(), measured_small_times.end()};
  }
  return interpolation_.predict_curve(params);
}

std::vector<double> TwoLevelModel::predict(
    std::span<const double> params,
    std::span<const double> measured_small_times) const {
  const obs::Span span("twolevel.predict");
  obs::count("twolevel.predictions");
  const auto curve = small_scale_curve(params, measured_small_times);
  auto pred = extrapolation_.predict(curve);
  const double factor =
      calibration_factor(extrapolation_.assign_cluster(curve));
  if (factor != 1.0) {
    for (auto& v : pred) v *= factor;
  }
  return pred;
}

void TwoLevelModel::save(std::ostream& out) const {
  Serializer s(out);
  save(s);
}

void TwoLevelModel::save(Serializer& s) const {
  HPCP_REQUIRE(interpolation_.fitted() && extrapolation_.fitted(),
               "cannot save an unfitted model");
  s.tag("hpcpredict-two-level-v1");
  s.write(opts_.display_name);
  s.write(opts_.prefer_measured_curve);
  s.write(opts_.train_on_predictions);
  s.write(opts_.uncertainty_samples);
  s.write(opts_.interval_lo_quantile);
  s.write(opts_.interval_hi_quantile);
  interpolation_.save(s);
  extrapolation_.save(s);
  s.write(static_cast<std::size_t>(calibration_log_ratios_.size()));
  for (const auto& ratios : calibration_log_ratios_) s.write(ratios);
}

TwoLevelModel TwoLevelModel::load(std::istream& in) {
  Deserializer d(in);
  return load(d);
}

TwoLevelModel TwoLevelModel::load(Deserializer& d) {
  d.expect_tag("hpcpredict-two-level-v1");
  TwoLevelModel model;
  model.opts_.display_name = d.read_string();
  model.opts_.prefer_measured_curve = d.read_bool();
  model.opts_.train_on_predictions = d.read_bool();
  model.opts_.uncertainty_samples = d.read_size();
  model.opts_.interval_lo_quantile = d.read_double();
  model.opts_.interval_hi_quantile = d.read_double();
  model.interpolation_ = InterpolationLevel::load(d);
  model.extrapolation_ = ExtrapolationLevel::load(d);
  model.opts_.log_interpolation_target = model.interpolation_.log_target();
  model.opts_.extrapolation = model.extrapolation_.options();
  model.calibration_log_ratios_.resize(d.read_size());
  for (auto& ratios : model.calibration_log_ratios_) {
    ratios = d.read_doubles();
  }
  return model;
}

void TwoLevelModel::save_file(const std::string& path) const {
  save_file_checked(path).value_or_throw();
}

Expected<void> TwoLevelModel::save_file_checked(
    const std::string& path) const {
  return atomic_write_file(path,
                           [this](std::ostream& out) { save(out); });
}

TwoLevelModel TwoLevelModel::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open model file: " + path);
  return load(in);
}

Expected<TwoLevelModel> TwoLevelModel::load_checked(std::istream& in) {
  // The deserializer throws on truncation, tag mismatches, and malformed
  // tokens; archives arrive from outside the process, so those surface as
  // typed errors here rather than exceptions.
  try {
    return load(in);
  } catch (const std::exception& e) {
    return Error{ErrorCode::BadData, e.what(), "model archive"};
  }
}

Expected<TwoLevelModel> TwoLevelModel::load_file_checked(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Error{ErrorCode::Io, "cannot open model file", path};
  return load_checked(in);
}

std::vector<PredictionInterval> TwoLevelModel::predict_with_uncertainty(
    std::span<const double> params) const {
  const obs::Span span("twolevel.predict_with_uncertainty");
  obs::count("twolevel.predictions");
  HPCP_REQUIRE(interpolation_.fitted() && extrapolation_.fitted(),
               "predict before fit");
  HPCP_REQUIRE(opts_.uncertainty_samples >= 2, "need at least 2 samples");
  HPCP_REQUIRE(opts_.interval_lo_quantile < opts_.interval_hi_quantile,
               "interval quantiles must be ordered");

  const auto stats = interpolation_.predict_curve_stats(params);
  auto point = extrapolation_.predict(stats.curve);
  const double factor =
      calibration_factor(extrapolation_.assign_cluster(stats.curve));
  for (auto& v : point) v *= factor;
  const std::size_t m = opts_.uncertainty_samples;
  const std::size_t k = stats.curve.size();

  // Deterministic per input: seed the perturbations from the parameters.
  std::uint64_t h = 0x5ca1ab1e;
  for (const double v : params) {
    h ^= std::bit_cast<std::uint64_t>(v);
    (void)splitmix64(h);
  }
  Rng rng(h);

  // Sample perturbed curves consistent with the forests' ensemble spread
  // and refit each; the spread of the refits is the model uncertainty.
  std::vector<std::vector<double>> samples(point.size());
  std::vector<double> curve(k);
  for (std::size_t s = 0; s < m; ++s) {
    for (std::size_t i = 0; i < k; ++i) {
      curve[i] =
          stats.curve[i] * std::exp(rng.normal(0.0, stats.log_spread[i]));
    }
    const auto pred = extrapolation_.predict(curve);
    for (std::size_t t = 0; t < pred.size(); ++t) {
      samples[t].push_back(factor * pred[t]);
    }
  }

  std::vector<PredictionInterval> out(point.size());
  for (std::size_t t = 0; t < point.size(); ++t) {
    out[t].value = point[t];
    out[t].lower = quantile(samples[t], opts_.interval_lo_quantile);
    out[t].upper = quantile(samples[t], opts_.interval_hi_quantile);
    // The point prediction (from the unperturbed curve) belongs inside its
    // own interval even if the sampled quantiles land slightly off-centre.
    out[t].lower = std::min(out[t].lower, point[t]);
    out[t].upper = std::max(out[t].upper, point[t]);
  }
  return out;
}

}  // namespace hpcp
