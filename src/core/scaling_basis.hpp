#pragma once

#include <span>
#include <string>
#include <vector>

#include "src/linear/matrix.hpp"

/// \file scaling_basis.hpp
/// The basis functions of the process count p that scalability models are
/// built from. Each term corresponds to a mechanism found in parallel
/// codes; a configuration's runtime curve is modelled as an intercept plus
/// a sparse non-trivial combination of these:
///
///   1/p        perfectly parallel compute
///   p^(-4/3)   superlinear speedup (shrinking working sets falling into
///              cache as p grows)
///   p^(-2/3)   surface-to-volume communication of 3-D decompositions
///   p^(-1/2)   surface-to-volume of 2-D decompositions
///   log2(p)/p  parallel work with logarithmic-depth reductions
///   log2(p)    tree-structured collectives (latency-bound)
///   sqrt(p)    row/column collectives of 2-D process grids
///   p          linear-cost collectives (all-to-all), serialisation
///
/// (The constant term is the regression intercept, not a basis column.)

namespace hpcp {

class ScalingBasis {
 public:
  /// The default seven-term basis above.
  ScalingBasis();

  /// A custom basis built from (name, function-id) pairs is not supported;
  /// construct from term names drawn from default_term_names().
  explicit ScalingBasis(const std::vector<std::string>& term_names);

  [[nodiscard]] static std::vector<std::string> default_term_names();

  [[nodiscard]] std::size_t size() const noexcept { return terms_.size(); }
  [[nodiscard]] const std::string& term_name(std::size_t j) const {
    return terms_.at(j).name;
  }

  /// Value of every term at process count p (p >= 1).
  [[nodiscard]] std::vector<double> eval(double p) const;

  /// Design matrix: one row per scale, one column per term.
  [[nodiscard]] Matrix design(std::span<const std::size_t> scales) const;

 private:
  struct Term {
    std::string name;
    double (*fn)(double p);
  };
  std::vector<Term> terms_;
};

}  // namespace hpcp
