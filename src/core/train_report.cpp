#include "src/core/train_report.hpp"

#include <iomanip>
#include <sstream>

namespace hpcp {

const char* fallback_stage_name(FallbackStage stage) noexcept {
  switch (stage) {
    case FallbackStage::ClusterMultitask:
      return "cluster-multitask";
    case FallbackStage::PooledMultitask:
      return "pooled-multitask";
    case FallbackStage::PerConfigOls:
      return "per-config-ols";
    case FallbackStage::AmdahlPreset:
      return "amdahl-preset";
  }
  return "unknown";
}

bool TrainReport::fully_nominal() const noexcept {
  if (!warnings.empty() || !clustering_converged) return false;
  for (const auto& c : clusters) {
    if (c.stage != FallbackStage::ClusterMultitask) return false;
  }
  return true;
}

std::size_t TrainReport::count_stage(FallbackStage stage) const noexcept {
  std::size_t n = 0;
  for (const auto& c : clusters) {
    if (c.stage == stage) ++n;
  }
  return n;
}

double TrainReport::stage_seconds(std::string_view stage) const noexcept {
  for (const auto& t : timings) {
    if (t.stage == stage) return t.seconds;
  }
  return 0.0;
}

std::string TrainReport::summary() const {
  std::ostringstream out;
  out << "trained on " << num_configs << " configuration(s) in "
      << num_clusters << " cluster(s)";
  if (threads > 0) out << " using " << threads << " thread(s)";
  if (!clustering_converged) out << " (clustering hit its iteration cap)";
  out << '\n';
  for (const auto& c : clusters) {
    out << "  cluster " << c.cluster << " (" << c.num_members
        << " member(s)): " << fallback_stage_name(c.stage);
    if (!c.reason.empty()) out << " — " << c.reason;
    out << '\n';
  }
  for (const auto& w : warnings) out << "  warning: " << w << '\n';
  if (!timings.empty()) {
    out << "  stage timings:";
    for (const auto& t : timings) {
      out << ' ' << t.stage << '=' << std::fixed << std::setprecision(3)
          << t.seconds * 1e3 << "ms";
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace hpcp
