#include "src/core/active_sampler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "src/common/check.hpp"
#include "src/linear/scaler.hpp"

namespace hpcp {

std::vector<double> ActiveSampler::scores(const ExtrapolationProblem& current,
                                          const Matrix& candidates,
                                          Rng& rng) const {
  HPCP_REQUIRE(candidates.cols() == current.num_params(),
               "candidate width must match the problem's parameters");
  InterpolationLevel level(opts_.forest, opts_.log_target);
  level.fit(current, rng);

  std::vector<double> out(candidates.rows());
  for (std::size_t i = 0; i < candidates.rows(); ++i) {
    const auto stats = level.predict_curve_stats(candidates.row(i));
    double acc = 0.0;
    for (const double s : stats.log_spread) acc += s;
    out[i] = acc / static_cast<double>(stats.log_spread.size());
  }
  return out;
}

std::vector<std::size_t> ActiveSampler::select(
    const ExtrapolationProblem& current, const Matrix& candidates,
    std::size_t count, Rng& rng) const {
  HPCP_REQUIRE(count <= candidates.rows(),
               "cannot select more candidates than offered");
  const auto score = scores(current, candidates, rng);
  if (count == 0) return {};

  // Standardise parameters over history + candidates so distances are
  // comparable across dimensions.
  const std::size_t nh = current.num_configs();
  const std::size_t nc = candidates.rows();
  Matrix all(nh + nc, current.num_params());
  for (std::size_t i = 0; i < nh; ++i) {
    all.set_row(i, current.train_configs.row(i));
  }
  for (std::size_t i = 0; i < nc; ++i) {
    all.set_row(nh + i, candidates.row(i));
  }
  const auto scaler = StandardScaler::fit(all);
  const Matrix std_all = scaler.transform(all);

  const auto sq_dist = [&](std::size_t a, std::size_t b) {
    double acc = 0.0;
    const auto ra = std_all.row(a);
    const auto rb = std_all.row(b);
    for (std::size_t c = 0; c < ra.size(); ++c) {
      const double d = ra[c] - rb[c];
      acc += d * d;
    }
    return acc;
  };

  // min squared distance of each candidate to anything already run.
  std::vector<double> min_dist(nc, std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < nc; ++i) {
    for (std::size_t h = 0; h < nh; ++h) {
      min_dist[i] = std::min(min_dist[i], sq_dist(nh + i, h));
    }
  }

  std::vector<std::size_t> chosen;
  std::vector<bool> used(nc, false);
  chosen.reserve(count);
  while (chosen.size() < count) {
    double best_value = -1.0;
    std::size_t best = 0;
    for (std::size_t i = 0; i < nc; ++i) {
      if (used[i]) continue;
      const double value =
          (score[i] + 1e-12) *
          std::pow(std::sqrt(min_dist[i]) + 1e-12, opts_.diversity_weight);
      if (value > best_value) {
        best_value = value;
        best = i;
      }
    }
    used[best] = true;
    chosen.push_back(best);
    for (std::size_t i = 0; i < nc; ++i) {
      if (!used[i]) {
        min_dist[i] = std::min(min_dist[i], sq_dist(nh + i, nh + best));
      }
    }
  }
  return chosen;
}

}  // namespace hpcp
