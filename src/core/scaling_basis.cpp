#include "src/core/scaling_basis.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/check.hpp"

namespace hpcp {

namespace {

double term_inv_p(double p) { return 1.0 / p; }
double term_p_m43(double p) { return std::pow(p, -4.0 / 3.0); }
double term_p_m23(double p) { return std::pow(p, -2.0 / 3.0); }
double term_p_m12(double p) { return 1.0 / std::sqrt(p); }
double term_log_over_p(double p) { return std::log2(p) / p; }
double term_log(double p) { return std::log2(p); }
double term_sqrt(double p) { return std::sqrt(p); }
double term_linear(double p) { return p; }

struct NamedTerm {
  const char* name;
  double (*fn)(double);
};

constexpr NamedTerm kAllTerms[] = {
    {"1/p", term_inv_p},        {"p^-4/3", term_p_m43},
    {"p^-2/3", term_p_m23},
    {"p^-1/2", term_p_m12},     {"log2(p)/p", term_log_over_p},
    {"log2(p)", term_log},      {"sqrt(p)", term_sqrt},
    {"p", term_linear},
};

}  // namespace

ScalingBasis::ScalingBasis() : ScalingBasis(default_term_names()) {}

ScalingBasis::ScalingBasis(const std::vector<std::string>& term_names) {
  HPCP_REQUIRE(!term_names.empty(), "basis needs at least one term");
  terms_.reserve(term_names.size());
  for (const auto& name : term_names) {
    const auto* found =
        std::find_if(std::begin(kAllTerms), std::end(kAllTerms),
                     [&](const NamedTerm& t) { return name == t.name; });
    HPCP_REQUIRE(found != std::end(kAllTerms),
                 "unknown basis term '" + name + "'");
    terms_.push_back(Term{found->name, found->fn});
  }
}

std::vector<std::string> ScalingBasis::default_term_names() {
  std::vector<std::string> names;
  for (const auto& t : kAllTerms) names.emplace_back(t.name);
  return names;
}

std::vector<double> ScalingBasis::eval(double p) const {
  HPCP_REQUIRE(p >= 1.0, "process count must be at least 1");
  std::vector<double> row(terms_.size());
  for (std::size_t j = 0; j < terms_.size(); ++j) row[j] = terms_[j].fn(p);
  return row;
}

Matrix ScalingBasis::design(std::span<const std::size_t> scales) const {
  Matrix out(scales.size(), terms_.size());
  for (std::size_t r = 0; r < scales.size(); ++r) {
    const auto row = eval(static_cast<double>(scales[r]));
    out.set_row(r, row);
  }
  return out;
}

}  // namespace hpcp
