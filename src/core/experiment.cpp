#include "src/core/experiment.hpp"

#include "src/apps/registry.hpp"
#include "src/common/check.hpp"

namespace hpcp {

Experiment make_experiment(const ExperimentConfig& config) {
  return make_experiment(config, reference_machine());
}

Experiment make_experiment(const ExperimentConfig& config,
                           const MachineModel& machine) {
  HPCP_REQUIRE(config.num_train >= 3, "too few training configurations");
  HPCP_REQUIRE(config.num_test >= 1, "need at least one test configuration");
  HPCP_REQUIRE(!config.small_scales.empty() && !config.target_scales.empty(),
               "need small and target scales");

  Experiment exp;
  exp.config = config;
  exp.app = make_application(config.app_name);
  exp.simulator = PlatformSimulator(machine, config.seed ^ 0x9e3779b9);

  Rng rng(config.seed);
  const auto& space = exp.app->parameter_space();
  const std::size_t total = config.num_train + config.num_test;
  auto configs = space.sample_lhs(total, rng);
  rng.shuffle(configs);

  const std::vector<std::vector<double>> train_configs(
      configs.begin(),
      configs.begin() + static_cast<std::ptrdiff_t>(config.num_train));
  const std::vector<std::vector<double>> test_configs(
      configs.end() - static_cast<std::ptrdiff_t>(config.num_test),
      configs.end());

  // Training history: small scales only — nothing in training has ever run
  // at a target scale.
  exp.history = generate_history(exp.simulator, *exp.app, train_configs,
                                 config.small_scales, config.runs_per_point,
                                 /*first_run_id=*/0);
  exp.problem =
      make_problem(exp.history, config.small_scales, config.target_scales);

  // Held-out test measurements (disjoint run-id range -> independent noise).
  exp.test.configs = Matrix(test_configs.size(), space.dimension());
  exp.test.small_times =
      Matrix(test_configs.size(), config.small_scales.size());
  exp.test.target_times =
      Matrix(test_configs.size(), config.target_scales.size());
  std::uint64_t run_id = 2'000'000;
  for (std::size_t i = 0; i < test_configs.size(); ++i) {
    exp.test.configs.set_row(i, test_configs[i]);
    for (std::size_t s = 0; s < config.small_scales.size(); ++s) {
      exp.test.small_times(i, s) = exp.simulator.measure(
          *exp.app, test_configs[i], config.small_scales[s], run_id++);
    }
    for (std::size_t s = 0; s < config.target_scales.size(); ++s) {
      exp.test.target_times(i, s) = exp.simulator.measure(
          *exp.app, test_configs[i], config.target_scales[s], run_id++);
    }
  }
  return exp;
}

}  // namespace hpcp
