#include "src/core/problem.hpp"

#include <algorithm>

#include "src/common/check.hpp"

namespace hpcp {

void ExtrapolationProblem::validate() const {
  HPCP_REQUIRE(!small_scales.empty(), "need at least one small scale");
  HPCP_REQUIRE(!target_scales.empty(), "need at least one target scale");
  HPCP_REQUIRE(std::is_sorted(small_scales.begin(), small_scales.end()),
               "small scales must be sorted");
  HPCP_REQUIRE(std::is_sorted(target_scales.begin(), target_scales.end()),
               "target scales must be sorted");
  HPCP_REQUIRE(small_scales.back() < target_scales.front(),
               "target scales must exceed every small scale");
  HPCP_REQUIRE(train_configs.cols() == param_names.size(),
               "training config width mismatch");
  HPCP_REQUIRE(train_configs.rows() == train_small_times.rows(),
               "training rows mismatch");
  HPCP_REQUIRE(train_small_times.cols() == small_scales.size(),
               "training scale count mismatch");
  HPCP_REQUIRE(train_configs.rows() > 0, "no training configurations");
}

ExtrapolationProblem make_problem(
    const HistoryStore& history, const std::vector<std::size_t>& small_scales,
    const std::vector<std::size_t>& target_scales) {
  ExtrapolationProblem problem;
  problem.param_names = history.param_names();
  problem.small_scales = small_scales;
  problem.target_scales = target_scales;

  const ScalingTable table = build_scaling_table(history, small_scales);
  problem.train_configs = table.configs;
  problem.train_small_times = table.times;
  problem.validate();
  return problem;
}

}  // namespace hpcp
