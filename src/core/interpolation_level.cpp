#include "src/core/interpolation_level.hpp"

#include <cmath>

#include "src/common/check.hpp"
#include "src/obs/obs.hpp"

namespace hpcp {

std::size_t InterpolationLevel::fit(const ExtrapolationProblem& problem,
                                    Rng& rng, ThreadPool* pool,
                                    const InterpolationLevel* warm) {
  const obs::Span span("interp.fit");
  problem.validate();
  scales_ = problem.small_scales;
  forests_.assign(scales_.size(), RandomForest(forest_options_));

  // A warm source is usable only when it models the exact same scale set
  // with the same feature width — otherwise per-scale structures would be
  // paired with the wrong data and the whole fit goes cold.
  const bool warm_usable =
      warm != nullptr && warm->fitted() && warm->scales_ == scales_ &&
      warm->num_features() == problem.train_configs.cols();

  // One anchor draw from the caller's stream, then a scale-derived (not
  // order-derived) seed per forest: scale s mixes (anchor, scale value, s)
  // through splitmix64, so its randomness is fixed before any fit starts
  // and identical under any scheduling of the fits below.
  const std::uint64_t anchor = rng.next();
  std::vector<Rng> scale_rngs;
  scale_rngs.reserve(scales_.size());
  for (std::size_t s = 0; s < scales_.size(); ++s) {
    std::uint64_t state =
        anchor + 0x9e3779b97f4a7c15ULL *
                     (static_cast<std::uint64_t>(scales_[s]) + 1);
    (void)splitmix64(state);
    state ^= static_cast<std::uint64_t>(s);
    scale_rngs.emplace_back(splitmix64(state));
  }

  std::vector<char> warm_hits(scales_.size(), 0);
  const auto fit_scale = [&](std::size_t s) {
    const obs::Span scale_span("interp.fit_scale");
    auto y = problem.train_small_times.column(s);
    if (log_target_) {
      for (auto& v : y) {
        HPCP_REQUIRE(v > 0.0, "runtimes must be positive");
        v = std::log(v);
      }
    }
    if (warm_usable &&
        forests_[s].warm_fit(warm->forests_[s], problem.train_configs, y,
                             pool)) {
      warm_hits[s] = 1;
      return;
    }
    forests_[s].fit(problem.train_configs, y, scale_rngs[s], pool);
  };

  // Fan-out policy: with more workers than scales, keep the outer loop
  // serial so each forest spreads its trees across the whole pool; with
  // few workers, fan out over scales (tree fits then run inline on the
  // worker). The per-scale seeds above make both branches bitwise equal.
  if (parallel_width(pool) > scales_.size()) {
    for (std::size_t s = 0; s < scales_.size(); ++s) fit_scale(s);
  } else {
    parallel_for(scales_.size(), fit_scale, pool);
  }
  std::size_t warm_scales = 0;
  for (const char hit : warm_hits) warm_scales += hit != 0 ? 1 : 0;
  return warm_scales;
}

std::vector<double> InterpolationLevel::predict_curve(
    std::span<const double> params) const {
  HPCP_REQUIRE(fitted(), "predict before fit");
  std::vector<double> curve(forests_.size());
  for (std::size_t s = 0; s < forests_.size(); ++s) {
    const double raw = forests_[s].predict(params);
    curve[s] = log_target_ ? std::exp(raw) : raw;
  }
  return curve;
}

InterpolationLevel::CurveWithSpread InterpolationLevel::predict_curve_stats(
    std::span<const double> params) const {
  HPCP_REQUIRE(fitted(), "predict before fit");
  CurveWithSpread out;
  out.curve.resize(forests_.size());
  out.log_spread.resize(forests_.size());
  for (std::size_t s = 0; s < forests_.size(); ++s) {
    const auto stats = forests_[s].predict_stats(params);
    if (log_target_) {
      out.curve[s] = std::exp(stats.mean);
      out.log_spread[s] = stats.stddev;
    } else {
      out.curve[s] = stats.mean;
      // Convert the absolute ensemble spread to a relative (log) spread.
      out.log_spread[s] =
          stats.mean > 0.0 ? stats.stddev / stats.mean : 0.0;
    }
  }
  return out;
}

Matrix InterpolationLevel::predict_curves(const Matrix& configs) const {
  const obs::Span span("interp.predict_curves");
  obs::count("interp.curve_rows", configs.rows());
  HPCP_REQUIRE(fitted(), "predict before fit");
  // One batched FlatForest pass per scale instead of a scalar tree walk per
  // (configuration, scale) — the hot path of every experiment driver.
  Matrix out(configs.rows(), forests_.size());
  for (std::size_t s = 0; s < forests_.size(); ++s) {
    const auto col = forests_[s].predict(configs);
    for (std::size_t r = 0; r < configs.rows(); ++r) {
      out(r, s) = log_target_ ? std::exp(col[r]) : col[r];
    }
  }
  return out;
}

void InterpolationLevel::save(Serializer& out) const {
  out.tag("interpolation-level");
  out.write(log_target_);
  out.write(scales_);
  out.write(static_cast<std::size_t>(forests_.size()));
  for (const auto& forest : forests_) forest.save(out);
}

InterpolationLevel InterpolationLevel::load(Deserializer& in) {
  in.expect_tag("interpolation-level");
  InterpolationLevel level;
  level.log_target_ = in.read_bool();
  level.scales_ = in.read_sizes();
  level.forests_.resize(in.read_size());
  for (auto& forest : level.forests_) forest = RandomForest::load(in);
  return level;
}

}  // namespace hpcp
