#pragma once

#include <string>
#include <vector>

#include "src/linear/matrix.hpp"
#include "src/platform/history.hpp"

/// \file problem.hpp
/// The extrapolation problem extracted from an execution history.
///
/// Faithful to the paper's premise, the training history contains *only
/// small-scale* runs: many configurations, each measured at every small
/// scale. Nothing in training has ever run at a target scale — target-scale
/// runtimes exist only as held-out ground truth for evaluation.

namespace hpcp {

struct ExtrapolationProblem {
  std::vector<std::string> param_names;
  /// Scales present in the history (sorted ascending).
  std::vector<std::size_t> small_scales;
  /// Scales to predict (sorted ascending, all larger than every small scale).
  std::vector<std::size_t> target_scales;

  Matrix train_configs;      ///< n × d input-parameter matrix
  Matrix train_small_times;  ///< n × |small_scales| (repeat-averaged)

  [[nodiscard]] std::size_t num_params() const noexcept {
    return param_names.size();
  }
  [[nodiscard]] std::size_t num_configs() const noexcept {
    return train_configs.rows();
  }

  /// Throws std::invalid_argument if shapes are inconsistent.
  void validate() const;
};

/// Extract the problem from a history: configurations covering all small
/// scales form the training set; incomplete configurations are dropped.
[[nodiscard]] ExtrapolationProblem make_problem(
    const HistoryStore& history, const std::vector<std::size_t>& small_scales,
    const std::vector<std::size_t>& target_scales);

}  // namespace hpcp
