#pragma once

#include <span>
#include <vector>

#include "src/common/rng.hpp"
#include "src/core/problem.hpp"
#include "src/forest/random_forest.hpp"

/// \file interpolation_level.hpp
/// The paper's interpolation level: one random-forest regressor per small
/// scale, each mapping application parameters to the runtime at that scale.
/// Training data at small scales is plentiful and i.i.d. with respect to
/// the prediction targets, so standard supervised learning applies.
///
/// Parallelism & determinism: fit() draws one anchor from the caller's Rng
/// and derives an independent stream per scale from (anchor, scale value,
/// scale index), so every scale's forest sees the same randomness no matter
/// how the per-scale fits are scheduled. When the pool is wider than the
/// scale count the scales fit serially and each forest parallelizes over
/// its trees; otherwise the scales fan out and trees build inline. Both
/// policies produce bitwise-identical forests.

namespace hpcp {

class InterpolationLevel {
 public:
  InterpolationLevel() = default;

  /// `log_target` (default on) fits the forests on log-runtimes: runtimes
  /// span orders of magnitude across a parameter space, and the evaluation
  /// metric is relative error, so learning in log space is the right
  /// objective. Predictions are mapped back with exp().
  explicit InterpolationLevel(ForestOptions forest_options,
                              bool log_target = true)
      : forest_options_(forest_options), log_target_(log_target) {}

  /// Fit one forest per small scale on (interp_configs, interp_small_times).
  /// Per-scale fits batch over `pool` (nullptr = the global pool); the
  /// fitted forests are bitwise independent of the pool size.
  ///
  /// `warm`, when given and fitted on the same scale set with the same
  /// feature width and tree count, seeds each scale's forest with the prior
  /// split structure (RandomForest::warm_fit); scales whose prior structure
  /// no longer covers the data fall back to a cold fit with that scale's
  /// derived Rng stream. Returns how many scales took the warm path (0 for
  /// a fully cold fit). The warm/cold choice depends only on the data, so
  /// the fitted level stays bitwise independent of the pool size.
  std::size_t fit(const ExtrapolationProblem& problem, Rng& rng,
                  ThreadPool* pool = nullptr,
                  const InterpolationLevel* warm = nullptr);

  /// Predicted small-scale runtime curve (one value per small scale).
  [[nodiscard]] std::vector<double> predict_curve(
      std::span<const double> params) const;

  /// Curves for many configurations (rows × small scales).
  [[nodiscard]] Matrix predict_curves(const Matrix& configs) const;

  /// Curve plus the forests' ensemble spread, the model-uncertainty input
  /// to TwoLevelModel::predict_with_uncertainty. `log_spread[s]` is the
  /// standard deviation of the per-tree predictions in log space (i.e. a
  /// relative spread), regardless of the log_target setting.
  struct CurveWithSpread {
    std::vector<double> curve;
    std::vector<double> log_spread;
  };
  [[nodiscard]] CurveWithSpread predict_curve_stats(
      std::span<const double> params) const;

  [[nodiscard]] bool fitted() const noexcept { return !forests_.empty(); }
  [[nodiscard]] std::size_t num_scales() const noexcept {
    return forests_.size();
  }
  /// Parameter-vector width the forests expect (0 before any fit).
  [[nodiscard]] std::size_t num_features() const noexcept {
    return forests_.empty() ? 0 : forests_.front().num_features();
  }
  [[nodiscard]] const RandomForest& forest(std::size_t scale_idx) const {
    return forests_.at(scale_idx);
  }
  [[nodiscard]] const std::vector<std::size_t>& scales() const noexcept {
    return scales_;
  }

  [[nodiscard]] bool log_target() const noexcept { return log_target_; }

  /// Serialization of the fitted level.
  void save(Serializer& out) const;
  [[nodiscard]] static InterpolationLevel load(Deserializer& in);

 private:
  ForestOptions forest_options_{};
  bool log_target_ = true;
  std::vector<RandomForest> forests_;
  std::vector<std::size_t> scales_;
};

}  // namespace hpcp
