#pragma once

#include <span>
#include <vector>

#include "src/cluster/kmeans.hpp"
#include "src/common/rng.hpp"
#include "src/core/scaling_basis.hpp"
#include "src/core/train_report.hpp"
#include "src/linear/matrix.hpp"

/// \file extrapolation_level.hpp
/// The paper's extrapolation level: per-cluster scalability models built
/// with the multitask lasso, trained from small-scale data only.
///
/// For a fixed configuration, runtime as a function of scale is modelled as
/// an intercept plus a sparse combination of scaling basis terms
/// (see scaling_basis.hpp). The regression's *samples* are the small
/// scales, its *tasks* are the configurations: one multitask lasso per
/// cluster selects, via the ℓ2,1 penalty, a single sparse set of basis
/// terms shared by every configuration in the cluster — the cluster's
/// scaling law. Sharing the functional form across many configurations is
/// what damps per-configuration interpolation noise: a noisy curve cannot
/// drag in a spurious basis term on its own.
///
/// Clustering (k-means on log-normalised curve shapes) exists because one
/// global scaling law cannot fit both compute-bound and communication-bound
/// regions of the parameter space.
///
/// Prediction for a new configuration: assign its (predicted) small-scale
/// curve to the nearest cluster, least-squares-fit the curve on that
/// cluster's selected basis terms, and evaluate the fitted scalability
/// model at the target scales.

namespace hpcp {

struct ExtrapolationLevelOptions {
  /// 0 = choose the cluster count automatically by silhouette score.
  std::size_t num_clusters = 0;
  std::size_t max_clusters = 6;
  /// k is reduced until every cluster has at least this many configurations
  /// (a cluster needs enough tasks for a stable shared support).
  std::size_t min_cluster_size = 8;
  /// false = no shared support: each configuration's curve is fitted
  /// independently by a single-task lasso at prediction time (the ablation
  /// and the per-configuration curve-fitting baseline).
  bool multitask = true;
  /// Upper bound on the shared-support size; 0 = min(3, |small scales|−1)
  /// (keeps the prediction-time least-squares fit overdetermined and the
  /// scaling law parsimonious).
  std::size_t max_support = 0;
  std::size_t lambda_grid_size = 25;
  /// One-standard-error-style rule: among λ whose leave-largest-scale-out
  /// error is within (1 + slack) of the best, pick the *largest* λ (the
  /// sparsest scaling law). Guards the extrapolation against marginal
  /// growing terms that happen to fit interpolation noise.
  double lambda_slack = 0.15;
  /// Scaling-basis terms to fit over; empty = ScalingBasis defaults.
  std::vector<std::string> basis_terms{};
};

class ExtrapolationLevel {
 public:
  ExtrapolationLevel() = default;
  explicit ExtrapolationLevel(ExtrapolationLevelOptions opts)
      : opts_(std::move(opts)),
        basis_(opts_.basis_terms.empty()
                   ? ScalingBasis()
                   : ScalingBasis(opts_.basis_terms)) {}

  /// Fit from training curves (rows = configurations, columns = small
  /// scales, all positive). Requires at least 2 small scales.
  ///
  /// Each cluster walks the FallbackStage chain (cluster multitask →
  /// pooled multitask → per-config log–log OLS → Amdahl preset) instead of
  /// failing when its multitask lasso is unusable; pass `report` to learn
  /// which stage each cluster landed on and why.
  ///
  /// Parallelism & determinism: the per-cluster support selections (and the
  /// λ-grid search inside each) batch over `pool` (nullptr = the global
  /// pool). Every attempt lands in a cluster-indexed slot and the fallback
  /// ladder is resolved serially in cluster order afterwards, so the fitted
  /// level — supports, λs, stages, report entries — is bitwise identical to
  /// a serial fit for any pool size. All Rng draws (clustering) happen on
  /// the calling thread before any parallel work.
  void fit(const Matrix& small_times,
           std::span<const std::size_t> small_scales,
           std::span<const std::size_t> target_scales, Rng& rng,
           TrainReport* report = nullptr, ThreadPool* pool = nullptr);

  /// Predicted target-scale runtimes for one small-scale curve.
  [[nodiscard]] std::vector<double> predict(
      std::span<const double> small_curve) const;

  /// Fitted scalability curve evaluated at an arbitrary scale (useful for
  /// plotting whole speedup curves).
  [[nodiscard]] double predict_at_scale(std::span<const double> small_curve,
                                        std::size_t nprocs) const;

  /// Cluster a curve would be assigned to.
  [[nodiscard]] std::size_t assign_cluster(
      std::span<const double> small_curve) const;

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }
  [[nodiscard]] std::size_t num_clusters() const noexcept {
    return clustering_.k();
  }
  [[nodiscard]] const KMeansResult& clustering() const noexcept {
    return clustering_;
  }
  /// Names of the basis terms in cluster c's shared support.
  [[nodiscard]] std::vector<std::string> support_names(std::size_t c) const;
  /// Fallback stage cluster c's scaling law was trained with.
  [[nodiscard]] FallbackStage cluster_stage(std::size_t c) const;
  [[nodiscard]] const ExtrapolationLevelOptions& options() const noexcept {
    return opts_;
  }
  [[nodiscard]] const ScalingBasis& basis() const noexcept { return basis_; }
  [[nodiscard]] const std::vector<std::size_t>& small_scales() const noexcept {
    return small_scales_;
  }
  [[nodiscard]] const std::vector<std::size_t>& target_scales()
      const noexcept {
    return target_scales_;
  }

  /// Serialization of the fitted level (clustering centroids, supports,
  /// options relevant to prediction).
  void save(Serializer& out) const;
  [[nodiscard]] static ExtrapolationLevel load(Deserializer& in);

 private:
  struct CurveFit {
    double intercept = 0.0;
    std::vector<double> coef;          ///< over the support terms
    std::vector<std::size_t> support;  ///< basis-term indices
  };

  /// Least-squares fit of one curve restricted to a support set.
  [[nodiscard]] CurveFit fit_curve(std::span<const double> curve,
                                   std::span<const std::size_t> support) const;

  /// Single-task path: per-curve lasso support selection.
  [[nodiscard]] std::vector<std::size_t> select_support_single(
      std::span<const double> curve) const;

  [[nodiscard]] double eval_fit(const CurveFit& fit, double p) const;

  /// PerConfigOls fallback: log–log power law t ≈ a·p^b fitted to `curve`
  /// over the small scales, evaluated at scale p.
  [[nodiscard]] double eval_power_law(std::span<const double> curve,
                                      double p) const;

  /// Predicted runtime of one curve at scale p, honouring the cluster's
  /// fallback stage.
  [[nodiscard]] double predict_one(std::span<const double> small_curve,
                                   double p) const;

  ExtrapolationLevelOptions opts_{};
  ScalingBasis basis_{};
  bool fitted_ = false;
  std::vector<std::size_t> small_scales_;
  std::vector<std::size_t> target_scales_;
  Matrix design_;  ///< |small scales| × |basis|
  KMeansResult clustering_;
  std::vector<std::vector<std::size_t>> cluster_supports_;
  std::vector<double> cluster_lambdas_;  ///< chosen λ per cluster (diagnostic)
  /// Which rung of the degradation ladder each cluster trained on. Empty
  /// supports are only legal for PerConfigOls (support chosen per query).
  std::vector<FallbackStage> cluster_stages_;
};

}  // namespace hpcp
