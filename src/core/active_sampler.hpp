#pragma once

#include <vector>

#include "src/core/interpolation_level.hpp"
#include "src/core/problem.hpp"

/// \file active_sampler.hpp
/// Active history growth (future-work extension): which configurations
/// should the site benchmark next?
///
/// Small-scale runs are cheap but not free; a fixed benchmarking budget
/// should go where the model is most unsure. The sampler fits the
/// interpolation level on the current history and ranks candidate
/// configurations by the forests' ensemble disagreement on their predicted
/// curves — the standard query-by-committee criterion, for free from the
/// bagged ensemble.

namespace hpcp {

struct ActiveSamplerOptions {
  ForestOptions forest{};
  bool log_target = true;
  /// Exponent on the diversity term in select(): candidates are chosen
  /// greedily by uncertainty × (distance to everything already run)^w.
  /// Pure uncertainty (w = 0) herds into the corners of the space where
  /// ensemble disagreement peaks; the distance factor keeps a batch
  /// spread out. 1.0 is a good default.
  double diversity_weight = 1.0;
};

class ActiveSampler {
 public:
  ActiveSampler() = default;
  explicit ActiveSampler(ActiveSamplerOptions opts) : opts_(opts) {}

  /// Uncertainty score per candidate row (mean log-space ensemble spread
  /// across the small scales; higher = more informative to run).
  [[nodiscard]] std::vector<double> scores(
      const ExtrapolationProblem& current, const Matrix& candidates,
      Rng& rng) const;

  /// Indices of `count` candidates chosen greedily by uncertainty ×
  /// diversity (distance in standardised parameter space to the current
  /// history and to already-chosen candidates), in selection order.
  [[nodiscard]] std::vector<std::size_t> select(
      const ExtrapolationProblem& current, const Matrix& candidates,
      std::size_t count, Rng& rng) const;

 private:
  ActiveSamplerOptions opts_{};
};

}  // namespace hpcp
