#pragma once

#include <string>

#include "src/common/error.hpp"
#include "src/core/extrapolation_level.hpp"
#include "src/core/extrapolation_model.hpp"
#include "src/core/interpolation_level.hpp"
#include "src/core/train_report.hpp"

/// \file two_level_model.hpp
/// The paper's contribution: the two-level performance-extrapolation model.
///
/// Level 1 (interpolation) — one random forest per small scale predicts a
/// configuration's small-scale runtimes from its input parameters.
/// Level 2 (extrapolation) — per-cluster multitask-lasso scalability models
/// map the small-scale runtime curve to the target-scale runtimes.
///
/// The extrapolation level is trained on the interpolation level's
/// *predictions* for the training configurations (not on their measured
/// small-scale runtimes), so the statistical character of its inputs is the
/// same at training and deployment — the paper's stated defence against
/// interpolation error. Both that choice and the curve source at prediction
/// time are configurable for ablation.

namespace hpcp {

struct TwoLevelOptions {
  ForestOptions forest{};
  /// Fit the interpolation forests on log-runtime (recommended; see
  /// InterpolationLevel).
  bool log_interpolation_target = true;
  ExtrapolationLevelOptions extrapolation{};
  /// Train level 2 on level-1 predictions (paper) or measured small-scale
  /// runtimes (ablation).
  bool train_on_predictions = true;
  /// At prediction time, use the configuration's measured small-scale
  /// runtimes when the caller supplies them instead of level-1 predictions.
  bool prefer_measured_curve = false;
  /// Monte-Carlo samples for predict_with_uncertainty.
  std::size_t uncertainty_samples = 64;
  /// Quantiles of the sampled predictions reported as the interval.
  double interval_lo_quantile = 0.05;
  double interval_hi_quantile = 0.95;
  std::string display_name = "two-level";
};

/// A point prediction with a model-uncertainty interval.
struct PredictionInterval {
  double value = 0.0;
  double lower = 0.0;
  double upper = 0.0;
};

/// Execution options for TwoLevelModel::fit_checked — orthogonal to the
/// statistical options in TwoLevelOptions. `threads == 0` runs the parallel
/// fit stages on the process-global pool (sized to the hardware);
/// `threads >= 1` builds a dedicated pool of exactly that size for the
/// fit. The fitted model is bitwise identical for every setting (see
/// DESIGN.md, "Parallel training & determinism contract").
class TwoLevelModel;

struct TwoLevelFitOptions {
  std::size_t threads = 0;
  /// Warm-start source for the interpolation forests: when it matches the
  /// problem (same small scales, feature width, and tree count) each
  /// scale's forest reuses the prior split structure and only recomputes
  /// node values (RandomForest::warm_fit); mismatched or stale scales fall
  /// back to a cold fit. The extrapolation level always refits from
  /// scratch. Must outlive the fit call; nullptr = fully cold fit.
  const TwoLevelModel* warm_start = nullptr;
};

class TwoLevelModel final : public ExtrapolationModel {
 public:
  TwoLevelModel() = default;
  explicit TwoLevelModel(TwoLevelOptions opts) : opts_(std::move(opts)) {}

  [[nodiscard]] std::string name() const override {
    return opts_.display_name;
  }

  using FitOptions = TwoLevelFitOptions;

  /// Throwing wrapper over fit_checked (ExtrapolationModel contract).
  void fit(const ExtrapolationProblem& problem, Rng& rng) override;

  /// Fit without throwing on bad *data*: returns BadData for non-finite
  /// parameters or non-positive small-scale runtimes, Degenerate when no
  /// training configurations survive, and otherwise a TrainReport saying
  /// which fallback stage every scaling-behaviour cluster landed on.
  /// Programming errors (shape mismatches between already-validated
  /// members) still assert.
  [[nodiscard]] Expected<TrainReport> fit_checked(
      const ExtrapolationProblem& problem, Rng& rng,
      const FitOptions& fit_opts = {});

  /// Training account of the last successful fit (default-constructed
  /// before any fit; not persisted by save/load).
  [[nodiscard]] const TrainReport& train_report() const noexcept {
    return train_report_;
  }

  using ExtrapolationModel::predict;
  [[nodiscard]] std::vector<double> predict(
      std::span<const double> params,
      std::span<const double> measured_small_times) const override;

  /// Point predictions with model-uncertainty intervals, one per target
  /// scale. The interpolation forests' ensemble spread (a log-space σ per
  /// small scale) is propagated through the scalability fit by Monte
  /// Carlo: perturbed curves are refitted and the configured quantiles of
  /// the resulting target predictions form the interval. Deterministic
  /// given the model and input. Captures *model* uncertainty only — the
  /// platform's run-to-run noise is on top.
  [[nodiscard]] std::vector<PredictionInterval> predict_with_uncertainty(
      std::span<const double> params) const;

  /// The small-scale curve the model would use for this input (level-1
  /// predictions, or the measured curve when preferred and available).
  [[nodiscard]] std::vector<double> small_scale_curve(
      std::span<const double> params,
      std::span<const double> measured_small_times) const;

  /// Fitted scalability curve of a configuration evaluated at arbitrary
  /// scales (not just the configured targets) — for plotting speedup
  /// curves or sweeping candidate job widths. Calibration is applied.
  [[nodiscard]] std::vector<double> predict_scaling_curve(
      std::span<const double> params,
      std::span<const std::size_t> scales) const;

  /// Level-2 half of predict_scaling_curve for an *already predicted*
  /// small-scale curve: cluster assignment, calibration, and the fitted
  /// scalability model evaluated at `scales`. The prediction server's
  /// batched hot path obtains many curves in one
  /// InterpolationLevel::predict_curves call and finishes each row here;
  /// predict_scaling_curve(params, scales) is bitwise-equal to
  /// predict_curve_at_scales(predict_curve(params), scales).
  [[nodiscard]] std::vector<double> predict_curve_at_scales(
      std::span<const double> small_curve,
      std::span<const std::size_t> scales) const;

  /// Few-shot calibration: fold a *measured* large-scale run back into the
  /// model. Ratios between measurement and (uncalibrated) prediction are
  /// pooled per scaling-behaviour cluster, and predictions for that
  /// cluster are rescaled by the geometric-mean ratio. This is the cheap
  /// online fix for systematic bias the small-scale window cannot reveal
  /// (e.g. communication terms that only dominate beyond it): one or two
  /// production runs recalibrate all future predictions in the same
  /// regime.
  void calibrate(std::span<const double> params, std::size_t nprocs,
                 double measured_runtime);

  /// Drop all calibration observations.
  void clear_calibration();
  [[nodiscard]] std::size_t num_calibration_points() const noexcept;

  [[nodiscard]] const InterpolationLevel& interpolation() const noexcept {
    return interpolation_;
  }
  [[nodiscard]] const ExtrapolationLevel& extrapolation() const noexcept {
    return extrapolation_;
  }
  [[nodiscard]] const TwoLevelOptions& options() const noexcept {
    return opts_;
  }

  /// Persist the fitted model ("train once, predict later"). The archive
  /// carries everything the prediction path needs — forests, clustering,
  /// scaling-law supports, calibration — but not fit-time options.
  void save(std::ostream& out) const;
  [[nodiscard]] static TwoLevelModel load(std::istream& in);
  /// Codec-agnostic persistence: the stream overloads above wrap these
  /// with the legacy text codec; the registry's binary archive path
  /// (src/registry/) passes its own Serializer/Deserializer subclass and
  /// reuses the identical field graph.
  void save(Serializer& s) const;
  [[nodiscard]] static TwoLevelModel load(Deserializer& d);
  /// Atomic on-disk publish (temp file + fsync + rename): a crash or I/O
  /// failure mid-save leaves the previous archive at `path` intact and
  /// loadable, never a torn file. Throwing wrapper over save_file_checked.
  void save_file(const std::string& path) const;
  [[nodiscard]] static TwoLevelModel load_file(const std::string& path);

  /// Non-throwing load for archives at a trust boundary (files on disk,
  /// bytes off the network): truncated, corrupt, or wrong-format streams
  /// come back as a typed BadData error instead of an exception;
  /// load_file_checked reports an unopenable path as Io.
  [[nodiscard]] static Expected<TwoLevelModel> load_checked(std::istream& in);
  [[nodiscard]] static Expected<TwoLevelModel> load_file_checked(
      const std::string& path);

  /// Non-throwing save for long-lived processes (the serving retrain
  /// path): an unwritable directory or full disk comes back as a typed Io
  /// error instead of an exception, and the destination archive is either
  /// fully replaced or untouched.
  [[nodiscard]] Expected<void> save_file_checked(
      const std::string& path) const;

 private:
  /// Multiplicative correction for one cluster (1.0 when uncalibrated).
  [[nodiscard]] double calibration_factor(std::size_t cluster) const;

  TwoLevelOptions opts_{};
  InterpolationLevel interpolation_;
  ExtrapolationLevel extrapolation_;
  TrainReport train_report_;
  /// Per-cluster log-ratios log(measured / predicted) from calibrate().
  std::vector<std::vector<double>> calibration_log_ratios_;
};

}  // namespace hpcp
