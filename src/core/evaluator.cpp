#include "src/core/evaluator.hpp"

#include "src/common/check.hpp"
#include "src/common/metrics.hpp"
#include "src/obs/obs.hpp"

namespace hpcp {

const ModelErrors& EvaluationReport::find(const std::string& model) const {
  for (const auto& m : models) {
    if (m.model == model) return m;
  }
  throw std::invalid_argument("no model named '" + model + "' in report");
}

Matrix predict_matrix(const ExtrapolationModel& model, const TestSet& test) {
  HPCP_REQUIRE(test.size() > 0, "empty test set");
  Matrix pred(test.size(), test.target_times.cols());
  for (std::size_t r = 0; r < test.size(); ++r) {
    const std::span<const double> small =
        test.has_small_times() ? test.small_times.row(r)
                               : std::span<const double>{};
    const auto p = model.predict(test.configs.row(r), small);
    HPCP_REQUIRE(p.size() == pred.cols(),
                 "model returned wrong number of target scales");
    pred.set_row(r, p);
  }
  return pred;
}

ModelErrors score_model(const ExtrapolationModel& model, const TestSet& test) {
  const obs::Span span("eval.score_model");
  const Matrix pred = predict_matrix(model, test);
  const std::size_t m = pred.cols();
  ModelErrors errors;
  errors.model = model.name();
  errors.mape.resize(m);
  errors.mdape.resize(m);
  errors.rmse.resize(m);
  std::vector<double> all_truth, all_pred;
  for (std::size_t t = 0; t < m; ++t) {
    const auto truth = test.target_times.column(t);
    const auto p = pred.column(t);
    errors.mape[t] = mape(truth, p);
    errors.mdape[t] = mdape(truth, p);
    errors.rmse[t] = rmse(truth, p);
    all_truth.insert(all_truth.end(), truth.begin(), truth.end());
    all_pred.insert(all_pred.end(), p.begin(), p.end());
  }
  errors.overall_mape = mape(all_truth, all_pred);
  errors.overall_mpe = mpe(all_truth, all_pred);
  return errors;
}

EvaluationReport evaluate_models(const std::vector<ExtrapolationModel*>& models,
                                 const ExtrapolationProblem& problem,
                                 const TestSet& test, Rng& rng) {
  HPCP_REQUIRE(!models.empty(), "no models to evaluate");
  const obs::Span span("eval.models");
  EvaluationReport report;
  report.target_scales = problem.target_scales;
  for (ExtrapolationModel* model : models) {
    HPCP_REQUIRE(model != nullptr, "null model");
    Rng fit_rng = rng.fork();
    {
      const obs::Span fit_span("eval.fit_model", model->name());
      model->fit(problem, fit_rng);
    }
    report.models.push_back(score_model(*model, test));
    obs::count("eval.models_evaluated");
  }
  return report;
}

}  // namespace hpcp
