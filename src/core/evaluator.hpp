#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/core/extrapolation_model.hpp"
#include "src/linear/matrix.hpp"

/// \file evaluator.hpp
/// Shared evaluation harness: fits a set of extrapolation models on one
/// problem and scores them per target scale on a held-out test set. Every
/// experiment binary goes through this, so all reported numbers are
/// computed identically.

namespace hpcp {

/// Held-out configurations with ground-truth runtimes.
struct TestSet {
  Matrix configs;       ///< n × d
  /// n × |small_scales| measured small-scale runtimes; may be 0 × 0 when
  /// the experiment forbids running test configurations at any scale.
  Matrix small_times;
  Matrix target_times;  ///< n × |target_scales| ground truth

  [[nodiscard]] std::size_t size() const noexcept { return configs.rows(); }
  [[nodiscard]] bool has_small_times() const noexcept {
    return small_times.rows() == configs.rows() && small_times.cols() > 0;
  }
};

/// One model's errors, per target scale and pooled.
struct ModelErrors {
  std::string model;
  std::vector<double> mape;   ///< per target scale, percent
  std::vector<double> mdape;  ///< per target scale, percent
  std::vector<double> rmse;   ///< per target scale, seconds
  double overall_mape = 0.0;  ///< pooled over all target scales
  double overall_mpe = 0.0;   ///< pooled signed bias, percent
};

struct EvaluationReport {
  std::vector<std::size_t> target_scales;
  std::vector<ModelErrors> models;

  /// Errors of a named model; throws std::invalid_argument if absent.
  [[nodiscard]] const ModelErrors& find(const std::string& model) const;
};

/// Predictions of a fitted model over a test set (rows × target scales).
/// Passes the test configurations' measured small-scale runtimes through
/// when available.
[[nodiscard]] Matrix predict_matrix(const ExtrapolationModel& model,
                                    const TestSet& test);

/// Scores an already-fitted model.
[[nodiscard]] ModelErrors score_model(const ExtrapolationModel& model,
                                      const TestSet& test);

/// Fits every model on `problem` (each with a forked Rng) and scores it on
/// `test`.
[[nodiscard]] EvaluationReport evaluate_models(
    const std::vector<ExtrapolationModel*>& models,
    const ExtrapolationProblem& problem, const TestSet& test, Rng& rng);

}  // namespace hpcp
