#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/evaluator.hpp"
#include "src/core/problem.hpp"
#include "src/platform/simulator.hpp"

/// \file experiment.hpp
/// End-to-end experiment assembly: sample an application's parameter space,
/// generate the small-scale execution history on the simulated platform,
/// and carve out the extrapolation problem plus a held-out test set with
/// target-scale ground truth. Every bench and example builds its scenario
/// through this, so experiments differ only in the knobs they turn.

namespace hpcp {

struct ExperimentConfig {
  std::string app_name = "heat3d";
  /// Training configurations; each is measured at every small scale and at
  /// *no* target scale (the paper's premise).
  std::size_t num_train = 300;
  /// Held-out configurations, measured at small AND target scales to
  /// provide evaluation ground truth.
  std::size_t num_test = 48;
  std::vector<std::size_t> small_scales{1, 2, 4, 8, 16};
  std::vector<std::size_t> target_scales{32, 64, 128, 256};
  std::size_t runs_per_point = 1;
  std::uint64_t seed = 2020;
};

struct Experiment {
  ExperimentConfig config;
  std::shared_ptr<Application> app;
  PlatformSimulator simulator;
  HistoryStore history;          ///< the small-scale training history
  ExtrapolationProblem problem;  ///< extracted from `history`
  TestSet test;                  ///< held-out ground truth
};

/// Build a complete experiment on the reference machine. Deterministic
/// given the config (sampling, simulated noise, and splits all derive from
/// config.seed).
[[nodiscard]] Experiment make_experiment(const ExperimentConfig& config);

/// Same, on a caller-supplied machine model.
[[nodiscard]] Experiment make_experiment(const ExperimentConfig& config,
                                         const MachineModel& machine);

}  // namespace hpcp
