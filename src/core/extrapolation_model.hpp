#pragma once

#include <span>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/core/problem.hpp"

/// \file extrapolation_model.hpp
/// The interface every large-scale performance predictor implements — the
/// paper's two-level model and all baselines — so the evaluation harness
/// can treat them uniformly.

namespace hpcp {

class ExtrapolationModel {
 public:
  virtual ~ExtrapolationModel() = default;

  /// Display name used in report tables.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Train from the problem's history. Must be called before predict().
  virtual void fit(const ExtrapolationProblem& problem, Rng& rng) = 0;

  /// Runtimes at every target scale for a new configuration.
  ///
  /// `measured_small_times` carries the configuration's *measured*
  /// small-scale runtimes when the experiment makes them available, and is
  /// empty otherwise. Most models ignore it (the paper's setting: a new
  /// configuration has never been run); per-configuration curve-fitting
  /// baselines require it and must throw std::invalid_argument when it is
  /// empty.
  [[nodiscard]] virtual std::vector<double> predict(
      std::span<const double> params,
      std::span<const double> measured_small_times) const = 0;

  /// Convenience overload: no measured small-scale runs.
  [[nodiscard]] std::vector<double> predict(
      std::span<const double> params) const {
    return predict(params, {});
  }
};

}  // namespace hpcp
