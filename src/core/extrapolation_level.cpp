#include "src/core/extrapolation_level.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>
#include <string>

#include "src/cluster/curve_features.hpp"
#include "src/common/check.hpp"
#include "src/linear/lasso.hpp"
#include "src/linear/multitask_lasso.hpp"
#include "src/linear/nnls.hpp"
#include "src/obs/obs.hpp"

namespace hpcp {

namespace {

/// Select columns of a matrix.
Matrix select_columns(const Matrix& m, std::span<const std::size_t> cols) {
  Matrix out(m.rows(), cols.size());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < cols.size(); ++c) {
      out(r, c) = m(r, cols[c]);
    }
  }
  return out;
}

/// Indices of the `limit` largest-norm rows of W, sorted ascending.
std::vector<std::size_t> cap_support(const Matrix& w,
                                     std::vector<std::size_t> support,
                                     std::size_t limit) {
  if (support.size() <= limit) return support;
  std::vector<std::pair<double, std::size_t>> scored;
  scored.reserve(support.size());
  for (const std::size_t j : support) {
    double norm = 0.0;
    for (const double v : w.row(j)) norm += v * v;
    scored.emplace_back(norm, j);
  }
  std::sort(scored.begin(), scored.end(), std::greater<>());
  scored.resize(limit);
  std::vector<std::size_t> out;
  out.reserve(limit);
  for (const auto& [norm, j] : scored) out.push_back(j);
  std::sort(out.begin(), out.end());
  return out;
}

/// Outcome of one multitask shared-support selection. `ok == false` means
/// the fallback chain must advance; `fail_reason` says why.
struct SupportAttempt {
  bool ok = false;
  std::vector<std::size_t> support;
  double lambda = 0.0;
  std::string fail_reason;
};

/// Shared-support selection for one set of configurations (a cluster, or
/// all of them pooled): normalise each member curve by its geometric mean,
/// pick λ by leave-largest-scale-out, fit, cap the support. Reports — not
/// throws — solver non-convergence and degeneracy so callers can degrade.
/// The λ-grid search batches over `pool`; the result is bitwise independent
/// of the pool size (indexed error slots, serial grid-order selection).
SupportAttempt attempt_multitask_support(
    const Matrix& design, const Matrix& small_times,
    const std::vector<std::size_t>& members, std::size_t max_support,
    const ExtrapolationLevelOptions& opts, ThreadPool* pool) {
  SupportAttempt out;
  const std::size_t k = small_times.cols();

  // Task matrix: rows = small scales (samples), columns = configurations
  // (tasks). Runtimes enter raw so the basis terms combine additively,
  // exactly like the cost mechanisms they model. Each task is normalised by
  // its geometric mean so large configurations do not dominate the
  // shared-support selection.
  Matrix y(k, members.size());
  for (std::size_t t = 0; t < members.size(); ++t) {
    double log_mean = 0.0;
    for (std::size_t s = 0; s < k; ++s) {
      log_mean += std::log(std::max(small_times(members[t], s), 1e-12));
    }
    const double scale = std::exp(log_mean / static_cast<double>(k));
    for (std::size_t s = 0; s < k; ++s) {
      y(s, t) = small_times(members[t], s) / scale;
    }
  }

  // λ by leave-largest-scale-out: fit on the k−1 smallest scales, validate
  // the prediction of the largest — a direct proxy for the extrapolation
  // use of the model.
  const double lmax = multitask_lambda_max(design, y);
  if (!std::isfinite(lmax)) {
    out.fail_reason = "lambda_max is non-finite (degenerate task matrix)";
    return out;
  }
  double best_lambda = std::max(lmax, 1e-12) * 1e-2;
  if (k >= 3 && lmax > 0.0) {
    std::vector<std::size_t> fit_rows(k - 1);
    std::iota(fit_rows.begin(), fit_rows.end(), std::size_t{0});
    const Matrix phi_fit = design.select_rows(fit_rows);
    const Matrix y_fit = y.select_rows(fit_rows);
    const auto held_phi = design.row(k - 1);
    const auto grid = lambda_grid(lmax, opts.lambda_grid_size);
    // Each grid point's fit + held-out validation is independent of the
    // others; errors land in grid-indexed slots, and the best-error scan
    // plus the sparsest-λ selection below run serially in grid order.
    const auto errs = parallel_map(
        grid.size(),
        [&](std::size_t g) {
          const auto model =
              fit_multitask_lasso(phi_fit, y_fit, {.lambda = grid[g]});
          const auto pred = model.predict(held_phi);
          double err = 0.0;
          for (std::size_t t = 0; t < members.size(); ++t) {
            const double truth = y(k - 1, t);
            const double rel = (pred[t] - truth) / truth;
            err += rel * rel;
          }
          return std::isfinite(err)
                     ? err
                     : std::numeric_limits<double>::infinity();
        },
        pool);
    double best_err = std::numeric_limits<double>::infinity();
    for (const double err : errs) best_err = std::min(best_err, err);
    if (!std::isfinite(best_err)) {
      out.fail_reason =
          "lambda search degenerate: no finite validation error on the "
          "held-out scale";
      return out;
    }
    // One-standard-error-style rule: the grid is descending in λ, so the
    // first λ within (1 + slack) of the best error is the sparsest
    // acceptable scaling law.
    for (std::size_t g = 0; g < grid.size(); ++g) {
      if (errs[g] <= best_err * (1.0 + opts.lambda_slack)) {
        best_lambda = grid[g];
        break;
      }
    }
  }

  // The final fit runs once per cluster on a tiny design (|scales| rows),
  // so it gets a generous iteration budget and a tolerance matched to
  // support selection (the coefficients only need to be settled enough that
  // the active set is stable). Failing to converge under *these* limits
  // marks a genuinely stuck solver, not an impatient caller.
  MultiTaskFitInfo info;
  const auto model = fit_multitask_lasso(
      design, y, {.lambda = best_lambda, .max_iter = 100'000, .tol = 1e-5},
      &info);
  if (!info.converged) {
    out.fail_reason = "multitask lasso hit its iteration cap (" +
                      std::to_string(info.iterations) + " iterations)";
    return out;
  }
  auto support = model.support();
  support = cap_support(model.weights(), std::move(support), max_support);
  if (support.empty()) {
    out.fail_reason = "l2,1 penalty shrank every basis term to zero";
    return out;
  }
  out.ok = true;
  out.support = std::move(support);
  out.lambda = best_lambda;
  return out;
}

/// The per-config power-law fallback needs at least two distinct scales to
/// identify an exponent.
std::size_t count_distinct(std::span<const std::size_t> values) {
  std::vector<std::size_t> v(values.begin(), values.end());
  std::sort(v.begin(), v.end());
  return static_cast<std::size_t>(
      std::distance(v.begin(), std::unique(v.begin(), v.end())));
}

}  // namespace

void ExtrapolationLevel::fit(const Matrix& small_times,
                             std::span<const std::size_t> small_scales,
                             std::span<const std::size_t> target_scales,
                             Rng& rng, TrainReport* report,
                             ThreadPool* pool) {
  const obs::Span fit_span("extrap.fit");
  HPCP_REQUIRE(small_times.rows() >= 1, "need at least one configuration");
  HPCP_REQUIRE(small_scales.size() >= 2, "need at least two small scales");
  HPCP_REQUIRE(small_times.cols() == small_scales.size(),
               "curve width must match small-scale count");
  HPCP_REQUIRE(!target_scales.empty(), "need at least one target scale");

  small_scales_.assign(small_scales.begin(), small_scales.end());
  target_scales_.assign(target_scales.begin(), target_scales.end());
  design_ = basis_.design(small_scales_);

  const std::size_t n = small_times.rows();
  const std::size_t k = small_scales_.size();
  const std::size_t max_support =
      opts_.max_support == 0 ? std::min<std::size_t>(3, k - 1)
                             : opts_.max_support;

  // --- cluster configurations by curve shape ---
  const obs::Stopwatch cluster_watch;
  {
    const obs::Span cluster_span("extrap.cluster");
    const Matrix shapes = normalize_curve_shapes(small_times);
    std::size_t num_clusters = opts_.num_clusters;
    const std::size_t feasible_max = std::max<std::size_t>(
        1, std::min(opts_.max_clusters,
                    n / std::max<std::size_t>(1, opts_.min_cluster_size)));
    if (num_clusters == 0) {
      num_clusters =
          n >= 2 ? select_k_silhouette(shapes, 1, feasible_max, rng, 0.2, pool)
                 : 1;
    }
    num_clusters = std::clamp<std::size_t>(num_clusters, 1, n);
    for (;;) {
      clustering_ = kmeans(shapes, {.k = num_clusters}, rng, pool);
      if (num_clusters == 1) break;
      const auto sizes = clustering_.cluster_sizes();
      if (*std::min_element(sizes.begin(), sizes.end()) >=
          std::min<std::size_t>(opts_.min_cluster_size,
                                n / num_clusters / 2 + 1)) {
        break;
      }
      --num_clusters;
    }
  }
  obs::gauge_set("extrap.clusters", static_cast<double>(clustering_.k()));

  if (report != nullptr) {
    *report = TrainReport{};
    report->num_configs = n;
    report->num_clusters = clustering_.k();
    report->clustering_converged = clustering_.converged;
    report->timings.push_back({"extrapolation.cluster",
                               cluster_watch.seconds()});
    if (!clustering_.converged) {
      report->warnings.push_back("k-means hit its iteration cap");
    }
  }

  // --- per-cluster shared-support selection (multitask lasso) ---
  cluster_supports_.assign(clustering_.k(), {});
  cluster_lambdas_.assign(clustering_.k(), 0.0);
  cluster_stages_.assign(clustering_.k(), FallbackStage::ClusterMultitask);
  if (!opts_.multitask) {
    // Single-task mode selects supports per curve at prediction time.
    if (report != nullptr) {
      for (std::size_t c = 0; c < clustering_.k(); ++c) {
        ClusterTrainInfo info;
        info.cluster = c;
        info.num_members = clustering_.cluster_sizes()[c];
        info.reason = "single-task ablation: support chosen per curve at "
                      "prediction time";
        report->clusters.push_back(std::move(info));
      }
    }
    fitted_ = true;
    return;
  }

  const bool power_law_feasible = count_distinct(small_scales_) >= 2;

  const obs::Stopwatch support_watch;

  // Member lists per cluster, built serially (labels are fixed by now).
  std::vector<std::vector<std::size_t>> cluster_members(clustering_.k());
  for (std::size_t i = 0; i < n; ++i) {
    cluster_members[clustering_.labels[i]].push_back(i);
  }

  // Phase 1 — every cluster's own support selection, into cluster-indexed
  // slots. Attempts are pure functions of (design, times, members, opts),
  // so running them concurrently changes nothing but wall time. Fan-out
  // policy: with more workers than clusters, keep the outer loop serial so
  // each attempt's λ-grid spreads across the whole pool; with few workers,
  // fan out over clusters (the grid then runs inline on the worker).
  const auto attempt_own = [&](std::size_t c) {
    const obs::Span cluster_span("extrap.cluster_fit");
    HPCP_ASSERT(!cluster_members[c].empty(),
                "kmeans produced an empty cluster");
    return attempt_multitask_support(design_, small_times, cluster_members[c],
                                     max_support, opts_, pool);
  };
  std::vector<SupportAttempt> own_attempts(clustering_.k());
  if (parallel_width(pool) > clustering_.k()) {
    for (std::size_t c = 0; c < clustering_.k(); ++c) {
      own_attempts[c] = attempt_own(c);
    }
  } else {
    own_attempts = parallel_map(clustering_.k(), attempt_own, pool);
  }

  // Phase 2 — pooled fallback support (one multitask lasso over *all*
  // configurations), computed once iff some cluster's own attempt failed.
  std::optional<SupportAttempt> pooled;
  const bool any_failed =
      std::any_of(own_attempts.begin(), own_attempts.end(),
                  [](const SupportAttempt& a) { return !a.ok; });
  if (any_failed) {
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), std::size_t{0});
    pooled = attempt_multitask_support(design_, small_times, all, max_support,
                                       opts_, pool);
  }

  // Phase 3 — resolve the degradation ladder serially in cluster order:
  // own multitask → pooled multitask → per-config power law → Amdahl
  // preset. Keeping this merge serial pins the report/metric order and
  // makes the fitted level bitwise independent of the pool size.
  for (std::size_t c = 0; c < clustering_.k(); ++c) {
    ClusterTrainInfo info;
    info.cluster = c;
    info.num_members = cluster_members[c].size();

    const SupportAttempt& own = own_attempts[c];
    if (own.ok) {
      info.stage = FallbackStage::ClusterMultitask;
      info.support = own.support;
      info.lambda = own.lambda;
    } else if (pooled->ok) {
      info.stage = FallbackStage::PooledMultitask;
      info.support = pooled->support;
      info.lambda = pooled->lambda;
      info.reason = own.fail_reason + "; reusing the pooled support";
    } else if (power_law_feasible) {
      info.stage = FallbackStage::PerConfigOls;
      info.reason = own.fail_reason + "; pooled fit also failed (" +
                    pooled->fail_reason + ")";
    } else {
      info.stage = FallbackStage::AmdahlPreset;
      info.support = {0};  // "1/p" plus intercept
      info.reason = own.fail_reason +
                    "; power law unidentifiable with a single distinct "
                    "small scale";
    }

    obs::count("fallback.rung", 1, {{"stage", fallback_stage_name(info.stage)}});
    cluster_supports_[c] = info.support;
    cluster_lambdas_[c] = info.lambda;
    cluster_stages_[c] = info.stage;
    if (report != nullptr) report->clusters.push_back(std::move(info));
  }
  if (report != nullptr) {
    report->timings.push_back({"extrapolation.support",
                               support_watch.seconds()});
  }
  fitted_ = true;
}

std::size_t ExtrapolationLevel::assign_cluster(
    std::span<const double> small_curve) const {
  HPCP_REQUIRE(fitted_, "assign before fit");
  std::vector<double> positive(small_curve.begin(), small_curve.end());
  for (auto& v : positive) v = std::max(v, 1e-12);
  const auto shape = normalize_curve_shape(positive);
  return clustering_.assign(shape);
}

ExtrapolationLevel::CurveFit ExtrapolationLevel::fit_curve(
    std::span<const double> curve,
    std::span<const std::size_t> support) const {
  // Weighted *non-negative* least squares: basis coefficients are costs and
  // cannot be negative (an unconstrained fit lets collinear terms cancel
  // inside the small-scale range and diverge outside it), and 1/t weights
  // make the fit minimise relative error, matching how the model is judged.
  const Matrix phi = select_columns(design_, support);
  std::vector<double> weights(curve.size());
  for (std::size_t i = 0; i < curve.size(); ++i) {
    weights[i] = 1.0 / std::max(curve[i] * curve[i], 1e-24);
  }
  const NnlsModel ls = fit_nnls(phi, curve, weights);
  CurveFit fit;
  fit.intercept = ls.intercept;
  fit.coef = ls.coef;
  fit.support.assign(support.begin(), support.end());
  return fit;
}

std::vector<std::size_t> ExtrapolationLevel::select_support_single(
    std::span<const double> curve) const {
  // Per-curve lasso over the full basis, λ by leave-largest-scale-out.
  const std::size_t k = small_scales_.size();
  const std::size_t max_support =
      opts_.max_support == 0 ? std::min<std::size_t>(3, k - 1)
                             : opts_.max_support;
  const double lmax = lasso_lambda_max(design_, curve);
  if (lmax <= 0.0) return {0};
  double best_lambda = lmax * 1e-2;
  if (k >= 3) {
    std::vector<std::size_t> fit_rows(k - 1);
    std::iota(fit_rows.begin(), fit_rows.end(), std::size_t{0});
    const Matrix phi_fit = design_.select_rows(fit_rows);
    std::vector<double> y_fit(curve.begin(), curve.end() - 1);
    const auto grid = lambda_grid(lmax, opts_.lambda_grid_size);
    std::vector<double> errs(grid.size());
    double best_err = std::numeric_limits<double>::infinity();
    for (std::size_t g = 0; g < grid.size(); ++g) {
      const auto model = fit_lasso(phi_fit, y_fit, {.lambda = grid[g]});
      const double pred = model.predict(design_.row(k - 1));
      const double rel = (pred - curve[k - 1]) / curve[k - 1];
      errs[g] = rel * rel;
      best_err = std::min(best_err, errs[g]);
    }
    for (std::size_t g = 0; g < grid.size(); ++g) {
      if (errs[g] <= best_err * (1.0 + opts_.lambda_slack)) {
        best_lambda = grid[g];
        break;
      }
    }
  }
  const auto model = fit_lasso(design_, curve, {.lambda = best_lambda});
  std::vector<std::size_t> support;
  std::vector<std::pair<double, std::size_t>> scored;
  for (std::size_t j = 0; j < model.coef.size(); ++j) {
    if (model.coef[j] != 0.0) scored.emplace_back(std::abs(model.coef[j]), j);
  }
  std::sort(scored.begin(), scored.end(), std::greater<>());
  if (scored.size() > max_support) scored.resize(max_support);
  for (const auto& [mag, j] : scored) support.push_back(j);
  std::sort(support.begin(), support.end());
  if (support.empty()) support.push_back(0);
  return support;
}

double ExtrapolationLevel::eval_fit(const CurveFit& fit, double p) const {
  const auto phi = basis_.eval(p);
  double acc = fit.intercept;
  for (std::size_t j = 0; j < fit.support.size(); ++j) {
    acc += fit.coef[j] * phi[fit.support[j]];
  }
  // Runtimes are positive; an extrapolated scalability model that crosses
  // zero has left its region of validity — clamp to a tiny positive floor.
  return std::max(acc, 1e-9);
}

double ExtrapolationLevel::eval_power_law(std::span<const double> curve,
                                          double p) const {
  // Log–log OLS of the query curve: log t = log a + b·log p. The weakest
  // model that still extrapolates — used only when every multitask support
  // selection failed (FallbackStage::PerConfigOls).
  const std::size_t k = small_scales_.size();
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    mean_x += std::log(static_cast<double>(small_scales_[i]));
    mean_y += std::log(std::max(curve[i], 1e-12));
  }
  mean_x /= static_cast<double>(k);
  mean_y /= static_cast<double>(k);
  double var = 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double dx = std::log(static_cast<double>(small_scales_[i])) - mean_x;
    const double dy = std::log(std::max(curve[i], 1e-12)) - mean_y;
    var += dx * dx;
    cov += dx * dy;
  }
  const double b = var > 0.0 ? cov / var : 0.0;
  const double log_pred = mean_y + b * (std::log(p) - mean_x);
  return std::max(std::exp(log_pred), 1e-9);
}

double ExtrapolationLevel::predict_one(std::span<const double> small_curve,
                                       double p) const {
  std::vector<std::size_t> support;
  if (opts_.multitask) {
    const std::size_t c = assign_cluster(small_curve);
    if (cluster_stages_[c] == FallbackStage::PerConfigOls) {
      return eval_power_law(small_curve, p);
    }
    support = cluster_supports_[c];
  } else {
    support = select_support_single(small_curve);
  }
  return eval_fit(fit_curve(small_curve, support), p);
}

std::vector<double> ExtrapolationLevel::predict(
    std::span<const double> small_curve) const {
  HPCP_REQUIRE(fitted_, "predict before fit");
  HPCP_REQUIRE(small_curve.size() == small_scales_.size(),
               "curve width must match small-scale count");
  std::vector<double> pred(target_scales_.size());
  if (opts_.multitask) {
    const std::size_t c = assign_cluster(small_curve);
    if (cluster_stages_[c] == FallbackStage::PerConfigOls) {
      for (std::size_t t = 0; t < target_scales_.size(); ++t) {
        pred[t] = eval_power_law(small_curve,
                                 static_cast<double>(target_scales_[t]));
      }
      return pred;
    }
    const CurveFit fit = fit_curve(small_curve, cluster_supports_[c]);
    for (std::size_t t = 0; t < target_scales_.size(); ++t) {
      pred[t] = eval_fit(fit, static_cast<double>(target_scales_[t]));
    }
    return pred;
  }
  const CurveFit fit =
      fit_curve(small_curve, select_support_single(small_curve));
  for (std::size_t t = 0; t < target_scales_.size(); ++t) {
    pred[t] = eval_fit(fit, static_cast<double>(target_scales_[t]));
  }
  return pred;
}

double ExtrapolationLevel::predict_at_scale(
    std::span<const double> small_curve, std::size_t nprocs) const {
  HPCP_REQUIRE(fitted_, "predict before fit");
  return predict_one(small_curve, static_cast<double>(nprocs));
}

std::vector<std::string> ExtrapolationLevel::support_names(
    std::size_t c) const {
  HPCP_REQUIRE(fitted_, "support_names before fit");
  HPCP_REQUIRE(c < cluster_supports_.size(), "cluster index out of range");
  std::vector<std::string> names;
  for (const std::size_t j : cluster_supports_[c]) {
    names.push_back(basis_.term_name(j));
  }
  return names;
}

FallbackStage ExtrapolationLevel::cluster_stage(std::size_t c) const {
  HPCP_REQUIRE(fitted_, "cluster_stage before fit");
  HPCP_REQUIRE(c < cluster_stages_.size(), "cluster index out of range");
  return cluster_stages_[c];
}

void ExtrapolationLevel::save(Serializer& out) const {
  out.tag("extrapolation-level");
  out.write(fitted_);
  out.write(opts_.multitask);
  out.write(opts_.max_support);
  out.write(opts_.lambda_grid_size);
  out.write(opts_.lambda_slack);
  std::vector<std::string> terms;
  for (std::size_t j = 0; j < basis_.size(); ++j) {
    terms.push_back(basis_.term_name(j));
  }
  out.write(terms);
  out.write(small_scales_);
  out.write(target_scales_);
  clustering_.centroids.save(out);
  out.write(static_cast<std::size_t>(cluster_supports_.size()));
  for (const auto& support : cluster_supports_) out.write(support);
  out.write(cluster_lambdas_);
  std::vector<std::size_t> stages;
  stages.reserve(cluster_stages_.size());
  for (const FallbackStage s : cluster_stages_) {
    stages.push_back(static_cast<std::size_t>(s));
  }
  out.write(stages);
}

ExtrapolationLevel ExtrapolationLevel::load(Deserializer& in) {
  in.expect_tag("extrapolation-level");
  ExtrapolationLevel level;
  level.fitted_ = in.read_bool();
  level.opts_.multitask = in.read_bool();
  level.opts_.max_support = in.read_size();
  level.opts_.lambda_grid_size = in.read_size();
  level.opts_.lambda_slack = in.read_double();
  level.opts_.basis_terms = in.read_strings();
  level.basis_ = ScalingBasis(level.opts_.basis_terms);
  level.small_scales_ = in.read_sizes();
  level.target_scales_ = in.read_sizes();
  level.clustering_.centroids = Matrix::load(in);
  level.cluster_supports_.resize(in.read_size());
  for (auto& support : level.cluster_supports_) support = in.read_sizes();
  level.cluster_lambdas_ = in.read_doubles();
  const auto stage_codes = in.read_sizes();
  level.cluster_stages_.reserve(stage_codes.size());
  for (const std::size_t code : stage_codes) {
    HPCP_REQUIRE(code <= static_cast<std::size_t>(FallbackStage::AmdahlPreset),
                 "corrupt archive: unknown fallback stage");
    level.cluster_stages_.push_back(static_cast<FallbackStage>(code));
  }
  if (level.fitted_) {
    level.design_ = level.basis_.design(level.small_scales_);
  }
  return level;
}

}  // namespace hpcp
