#include "src/registry/registry.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <system_error>

#include "src/common/io.hpp"
#include "src/obs/jsonlite.hpp"
#include "src/registry/archive.hpp"

namespace hpcp::registry {

namespace fs = std::filesystem;

namespace {

/// "<version>.hpcp" -> version; 0 when the stem is not a positive integer.
std::uint64_t parse_version_stem(const std::string& stem) {
  if (stem.empty() || stem.size() > 19) return 0;
  std::uint64_t v = 0;
  for (const char c : stem) {
    if (c < '0' || c > '9') return 0;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

}  // namespace

bool Registry::valid_tenant(const std::string& name) {
  if (name.empty() || name.size() > 64 || name.front() == '.') return false;
  return std::all_of(name.begin(), name.end(), [](unsigned char c) {
    return std::isalnum(c) != 0 || c == '_' || c == '.' || c == '-';
  });
}

Expected<Registry> Registry::open(const std::string& root) {
  Registry registry;
  registry.root_ = root;
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) {
    return Error{ErrorCode::Io, "cannot create registry root: " + ec.message(),
                 root};
  }
  auto scanned = registry.rescan();
  if (!scanned) return scanned.error();
  return registry;
}

Expected<void> Registry::rescan() {
  tenants_.clear();
  std::error_code ec;
  fs::directory_iterator it(root_, ec);
  if (ec) {
    return Error{ErrorCode::Io, "cannot read registry root: " + ec.message(),
                 root_};
  }
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_directory(ec) || ec) continue;
    const std::string tenant = entry.path().filename().string();
    if (!valid_tenant(tenant)) continue;
    TenantInfo info;
    info.tenant = tenant;
    fs::directory_iterator files(entry.path(), ec);
    if (ec) continue;
    for (const fs::directory_entry& file : files) {
      if (!file.is_regular_file(ec) || ec) continue;
      const fs::path& p = file.path();
      if (p.extension() != kArchiveExtension) continue;
      const std::uint64_t version = parse_version_stem(p.stem().string());
      if (version == 0) continue;
      info.versions.push_back(version);
      info.bytes += static_cast<std::uint64_t>(file.file_size(ec));
    }
    if (info.versions.empty()) continue;
    std::sort(info.versions.begin(), info.versions.end());
    info.latest = info.versions.back();
    tenants_.emplace(tenant, std::move(info));
  }
  return {};
}

std::string Registry::manifest_path() const {
  return (fs::path(root_) / kManifestFile).string();
}

std::vector<TenantInfo> Registry::list() const {
  std::vector<TenantInfo> out;
  out.reserve(tenants_.size());
  for (const auto& [_, info] : tenants_) out.push_back(info);
  return out;
}

bool Registry::has_tenant(const std::string& tenant) const {
  return tenants_.count(tenant) > 0;
}

std::uint64_t Registry::latest_version(const std::string& tenant) const {
  const auto it = tenants_.find(tenant);
  return it != tenants_.end() ? it->second.latest : 0;
}

std::string Registry::version_path(const std::string& tenant,
                                   std::uint64_t version) const {
  return (fs::path(root_) / tenant /
          (std::to_string(version) + kArchiveExtension))
      .string();
}

Expected<std::uint64_t> Registry::add_model(const std::string& tenant,
                                            const TwoLevelModel& model) {
  if (!valid_tenant(tenant)) {
    return Error{ErrorCode::BadData, "invalid tenant name", tenant};
  }
  std::error_code ec;
  fs::create_directories(fs::path(root_) / tenant, ec);
  if (ec) {
    return Error{ErrorCode::Io,
                 "cannot create tenant directory: " + ec.message(), tenant};
  }
  const std::uint64_t version = latest_version(tenant) + 1;
  ArchiveMeta meta;
  meta.tenant = tenant;
  meta.version = version;
  auto written = write_model_archive(version_path(tenant, version), model,
                                     meta);
  if (!written) return written.error();

  TenantInfo& info = tenants_[tenant];
  info.tenant = tenant;
  info.versions.push_back(version);
  info.latest = version;
  info.bytes += static_cast<std::uint64_t>(
      fs::file_size(version_path(tenant, version), ec));
  auto manifest = write_manifest();
  if (!manifest) return manifest.error();
  return version;
}

Expected<std::uint64_t> Registry::add_from_file(
    const std::string& tenant, const std::string& model_path) {
  auto model = load_model_any(model_path);
  if (!model) return model.error();
  return add_model(tenant, *model);
}

Expected<std::size_t> Registry::gc(std::size_t keep) {
  if (keep == 0) {
    return Error{ErrorCode::BadData,
                 "gc keep must be >= 1 (0 would delete every model)", root_};
  }
  std::size_t removed = 0;
  for (auto& [tenant, info] : tenants_) {
    while (info.versions.size() > keep) {
      const std::uint64_t victim = info.versions.front();
      const std::string path = version_path(tenant, victim);
      std::error_code ec;
      const std::uint64_t bytes =
          static_cast<std::uint64_t>(fs::file_size(path, ec));
      if (!fs::remove(path, ec) || ec) {
        return Error{ErrorCode::Io, "cannot remove archive: " + ec.message(),
                     path};
      }
      info.versions.erase(info.versions.begin());
      info.bytes -= std::min(info.bytes, bytes);
      ++removed;
    }
  }
  auto manifest = write_manifest();
  if (!manifest) return manifest.error();
  return removed;
}

Expected<void> Registry::annotate(const std::string& tenant,
                                  const std::string& key,
                                  const std::string& value) {
  if (!valid_tenant(tenant)) {
    return Error{ErrorCode::BadData, "invalid tenant name", tenant};
  }
  notes_[tenant][key] = value;
  return write_manifest();
}

const std::map<std::string, std::string>* Registry::annotations(
    const std::string& tenant) const {
  const auto it = notes_.find(tenant);
  return it != notes_.end() ? &it->second : nullptr;
}

Expected<void> Registry::write_manifest() const {
  // tenants_ is a std::map, so the manifest's tenant order (and therefore
  // its bytes) is deterministic — the golden registry test pins it.
  std::string out = "{\"schema\":\"";
  out += kManifestSchema;
  out += "\",\"tenants\":{";
  bool first_tenant = true;
  for (const auto& [tenant, info] : tenants_) {
    if (!first_tenant) out += ',';
    first_tenant = false;
    out += '"';
    out += tenant;  // valid_tenant guarantees no JSON-special bytes
    out += "\":{\"latest\":";
    out += std::to_string(info.latest);
    out += ",\"versions\":[";
    for (std::size_t i = 0; i < info.versions.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(info.versions[i]);
    }
    out += ']';
    // Annotations render only when present, so un-annotated stores keep
    // their exact historical manifest bytes (the golden test pins them).
    if (const auto notes = notes_.find(tenant);
        notes != notes_.end() && !notes->second.empty()) {
      out += ",\"notes\":{";
      bool first_note = true;
      for (const auto& [key, value] : notes->second) {
        if (!first_note) out += ',';
        first_note = false;
        out += obs::json_quote(key);
        out += ':';
        out += obs::json_quote(value);
      }
      out += '}';
    }
    out += '}';
  }
  out += "}}\n";
  return atomic_write_file(manifest_path(), [&out](std::ostream& stream) {
    stream << out;
  });
}

}  // namespace hpcp::registry
