#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/serialize.hpp"

/// \file binary_codec.hpp (registry)
/// Raw little-endian binary codec behind the `.hpcp` model archive.
///
/// The legacy text codec (src/common/serialize.hpp) round-trips doubles
/// through hexfloat tokens — exact, but every value costs a strtod and the
/// stream tokenizer. This codec writes the same logical field graph as raw
/// bytes: u64 little-endian integers, the 8 raw bytes of every double
/// (bit-exact by construction), and — the part that makes loading fast —
/// whole `vector<double>` payloads as one contiguous block, so the reader
/// is a bounds-checked memcpy instead of a parse. Model loads through this
/// codec are what the `mmap_load_vs_full_deserialize` bench ratio measures.
///
/// Because the model classes serialize through virtual
/// Serializer/Deserializer primitives, this file contains no model
/// knowledge at all: BinarySerializer writes to any ostream,
/// BinaryDeserializer reads from an in-memory byte span (an mmap'd archive
/// section or a read() fallback buffer). Every read is bounds-checked
/// against the span and throws std::runtime_error on overrun — the
/// archive layer converts that to a typed BadData error, never UB.

namespace hpcp::registry {

/// Writes the binary wire format to an ostream. Tags are length-prefixed
/// strings just like the text codec's semantic (the reader verifies them),
/// so structure mismatches still fail loudly.
class BinarySerializer final : public Serializer {
 public:
  explicit BinarySerializer(std::ostream& out) : Serializer(out) {}

  void tag(const std::string& name) override;
  void write(double v) override;
  void write(std::size_t v) override;
  void write(std::int64_t v) override;
  void write(bool v) override;
  void write(const std::string& s) override;
  void write(const std::vector<double>& v) override;
  void write(const std::vector<std::size_t>& v) override;
  void write(const std::vector<std::string>& v) override;

 private:
  void put_u64(std::uint64_t v);
  void put_bytes(const void* data, std::size_t n);
};

/// Reads the binary wire format from a byte span the caller keeps alive
/// (the mmap'd section, or a heap buffer). `consumed()` reports how many
/// bytes a successful parse used, so the archive layer can reject trailing
/// garbage.
class BinaryDeserializer final : public Deserializer {
 public:
  BinaryDeserializer(const unsigned char* data, std::size_t size)
      : data_(data), size_(size) {}

  void expect_tag(const std::string& name) override;
  [[nodiscard]] double read_double() override;
  [[nodiscard]] std::size_t read_size() override;
  [[nodiscard]] std::int64_t read_int() override;
  [[nodiscard]] bool read_bool() override;
  [[nodiscard]] std::string read_string() override;
  [[nodiscard]] std::vector<double> read_doubles() override;
  [[nodiscard]] std::vector<std::size_t> read_sizes() override;
  [[nodiscard]] std::vector<std::string> read_strings() override;

  [[nodiscard]] std::size_t consumed() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return size_ - pos_;
  }

 private:
  [[nodiscard]] std::uint64_t take_u64();
  /// Bounds check + advance; throws std::runtime_error on overrun.
  [[nodiscard]] const unsigned char* take(std::size_t n);

  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
};

}  // namespace hpcp::registry
