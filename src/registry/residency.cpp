#include "src/registry/residency.hpp"

#include <utility>

#include "src/obs/obs.hpp"
#include "src/registry/archive.hpp"

namespace hpcp::registry {

ModelPool::ModelPool(Registry registry, PoolOptions opts)
    : registry_(std::move(registry)), opts_(opts) {
  if (opts_.max_resident_models == 0) opts_.max_resident_models = 1;
}

bool ModelPool::known(const std::string& tenant) const {
  return registry_.has_tenant(tenant);
}

std::size_t ModelPool::resident_count() const noexcept {
  return resident_.size();
}

TenantStats& ModelPool::stats_for(const std::string& tenant) {
  TenantStats& s = stats_[tenant];
  if (s.tenant.empty()) s.tenant = tenant;
  return s;
}

Expected<std::shared_ptr<const ResidentModel>> ModelPool::load_version(
    const std::string& tenant, std::uint64_t version) {
  const obs::Span span("registry.load", tenant);
  const std::string path = registry_.version_path(tenant, version);
  auto archive = ModelArchive::open(path);
  if (!archive) return archive.error();
  auto model = archive->load_model();
  if (!model) return model.error();
  auto resident = std::make_shared<ResidentModel>();
  resident->tenant = tenant;
  resident->version = version;
  resident->bytes = static_cast<std::uint64_t>(archive->file_bytes());
  resident->model = std::move(*model);
  resident->default_scales =
      resident->model.extrapolation().target_scales();
  resident->num_features =
      resident->model.interpolation().num_features();
  return std::shared_ptr<const ResidentModel>(std::move(resident));
}

void ModelPool::install(const std::string& tenant,
                        std::shared_ptr<const ResidentModel> model) {
  const auto it = resident_.find(tenant);
  if (it != resident_.end()) {
    // Epoch swap: the old shared_ptr stays alive for any in-flight pins
    // and is freed when the last of them releases.
    resident_bytes_ -= std::min(resident_bytes_, it->second.model->bytes);
    lru_.erase(it->second.lru_pos);
    resident_.erase(it);
  }
  resident_bytes_ += model->bytes;
  lru_.push_front(tenant);
  resident_.emplace(tenant, Resident{std::move(model), lru_.begin()});
  evict_down(tenant);
  obs::gauge_set("registry.resident_models",
                 static_cast<double>(resident_.size()));
  obs::gauge_set("registry.resident_bytes",
                 static_cast<double>(resident_bytes_));
}

void ModelPool::evict_down(const std::string& protect) {
  const auto over_budget = [this] {
    if (resident_.size() > opts_.max_resident_models) return true;
    return opts_.max_resident_bytes > 0 && resident_.size() > 1 &&
           resident_bytes_ > opts_.max_resident_bytes;
  };
  // Walk coldest-first; a pinned entry (an in-flight batch still holds
  // the shared_ptr) is skipped — it would keep its memory alive anyway,
  // so evicting it frees nothing and only forces a pointless reload.
  while (over_budget()) {
    bool evicted = false;
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      const std::string tenant = *it;
      if (tenant == protect) continue;
      const auto rit = resident_.find(tenant);
      if (rit == resident_.end()) continue;
      if (rit->second.model.use_count() > 1) continue;  // pinned in-flight
      resident_bytes_ -= std::min(resident_bytes_, rit->second.model->bytes);
      ++total_evictions_;
      TenantStats& stats = stats_for(tenant);
      ++stats.evictions;
      stats.resident = false;
      obs::count("registry.evictions");
      resident_.erase(rit);
      lru_.erase(std::next(it).base());
      evicted = true;
      break;
    }
    // Everything else is pinned or protected: over budget is the lesser
    // evil versus evicting a model mid-batch.
    if (!evicted) break;
  }
}

Expected<std::shared_ptr<const ResidentModel>> ModelPool::acquire(
    const std::string& tenant) {
  const auto it = resident_.find(tenant);
  if (it != resident_.end()) {
    TenantStats& stats = stats_for(tenant);
    ++stats.hits;
    // Refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    obs::count("registry.residency_hit");
    return it->second.model;
  }
  if (!registry_.has_tenant(tenant)) {
    return Error{ErrorCode::BadData, "unknown tenant", tenant};
  }
  TenantStats& stats = stats_for(tenant);
  ++stats.loads;
  obs::count("registry.residency_miss");
  auto loaded = load_version(tenant, registry_.latest_version(tenant));
  if (!loaded) {
    ++stats.load_failures;
    stats.last_error = loaded.error().to_string();
    obs::count("registry.load_failures");
    return loaded.error();
  }
  stats.version = (*loaded)->version;
  stats.resident = true;
  stats.last_error.clear();
  std::shared_ptr<const ResidentModel> model = *loaded;
  install(tenant, *loaded);
  return model;
}

Expected<std::uint64_t> ModelPool::reload(const std::string& tenant) {
  if (!registry_.has_tenant(tenant)) {
    // The registry may have gained the tenant since the last scan.
    (void)registry_.rescan();
  }
  if (!registry_.has_tenant(tenant)) {
    return Error{ErrorCode::BadData, "unknown tenant", tenant};
  }
  TenantStats& stats = stats_for(tenant);
  ++stats.loads;
  auto loaded = load_version(tenant, registry_.latest_version(tenant));
  if (!loaded) {
    // Old resident model (if any) keeps serving; only this tenant is
    // marked degraded.
    ++stats.load_failures;
    stats.last_error = loaded.error().to_string();
    obs::count("registry.load_failures");
    return loaded.error();
  }
  const std::uint64_t version = (*loaded)->version;
  stats.version = version;
  stats.resident = true;
  stats.last_error.clear();
  install(tenant, std::move(*loaded));
  obs::count("registry.reloads");
  return version;
}

void ModelPool::reload_all_resident() {
  std::vector<std::string> tenants;
  tenants.reserve(resident_.size());
  for (const auto& [tenant, _] : resident_) tenants.push_back(tenant);
  for (const std::string& tenant : tenants) (void)reload(tenant);
}

Expected<void> ModelPool::refresh() { return registry_.rescan(); }

std::vector<TenantStats> ModelPool::stats() const {
  // Union of touched tenants and on-disk tenants, keyed (sorted) by name.
  std::map<std::string, TenantStats> merged = stats_;
  for (const TenantInfo& info : registry_.list()) {
    TenantStats& s = merged[info.tenant];
    if (s.tenant.empty()) s.tenant = info.tenant;
  }
  std::vector<TenantStats> out;
  out.reserve(merged.size());
  for (auto& [_, s] : merged) out.push_back(s);
  return out;
}

}  // namespace hpcp::registry
