#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/core/two_level_model.hpp"

/// \file registry.hpp (registry)
/// The named+versioned on-disk model store.
///
/// Layout under one root directory:
///
///   <root>/MANIFEST.json                  hpcp-registry/1 index
///   <root>/<tenant>/<version>.hpcp        sectioned binary archives
///
/// Tenants are flat names ([A-Za-z0-9_.-], no path separators — the name
/// is a directory component, so anything else is rejected before it can
/// traverse). Versions are dense positive integers per tenant; `add`
/// assigns latest+1 and never overwrites. Every mutation publishes the
/// archive first (atomic tmp+fsync+rename via write_model_archive), then
/// rewrites MANIFEST.json the same way, so a crash between the two leaves
/// a manifest that under-reports — `open` rescans the directory tree and
/// treats the filesystem as the source of truth, healing exactly that.
///
/// The registry is a passive store: residency, eviction, and hot swap live
/// in ModelPool (residency.hpp). `hpcp registry ls|add|gc` drives this
/// class from the CLI.

namespace hpcp::registry {

inline constexpr const char* kManifestSchema = "hpcp-registry/1";
inline constexpr const char* kManifestFile = "MANIFEST.json";
inline constexpr const char* kArchiveExtension = ".hpcp";

/// One tenant's on-disk state.
struct TenantInfo {
  std::string tenant;
  std::uint64_t latest = 0;             ///< highest version (0 = none)
  std::vector<std::uint64_t> versions;  ///< ascending
  std::uint64_t bytes = 0;              ///< total archive bytes on disk
};

class Registry {
 public:
  /// Opens (creating the root directory if needed) and scans the store.
  /// An unreadable root is Io; malformed entries are skipped, not fatal —
  /// a foreign file in the tree must not take the registry down.
  [[nodiscard]] static Expected<Registry> open(const std::string& root);

  /// Tenant names are directory components: letters, digits, '_', '.',
  /// '-', not empty, not starting with '.', at most 64 bytes.
  [[nodiscard]] static bool valid_tenant(const std::string& name);

  [[nodiscard]] const std::string& root() const noexcept { return root_; }
  [[nodiscard]] std::string manifest_path() const;

  /// Sorted by tenant name.
  [[nodiscard]] std::vector<TenantInfo> list() const;
  [[nodiscard]] bool has_tenant(const std::string& tenant) const;
  /// Highest version for `tenant`, 0 when absent.
  [[nodiscard]] std::uint64_t latest_version(const std::string& tenant) const;
  /// Archive path for (tenant, version); purely syntactic.
  [[nodiscard]] std::string version_path(const std::string& tenant,
                                         std::uint64_t version) const;

  /// Archives `model` as `tenant`'s next version and returns it.
  [[nodiscard]] Expected<std::uint64_t> add_model(const std::string& tenant,
                                                  const TwoLevelModel& model);
  /// Imports a model file (either archive format) as the next version.
  [[nodiscard]] Expected<std::uint64_t> add_from_file(
      const std::string& tenant, const std::string& model_path);

  /// Deletes all but the newest `keep` versions of every tenant; returns
  /// how many archives were removed. keep == 0 is rejected (it would
  /// silently empty the store).
  [[nodiscard]] Expected<std::size_t> gc(std::size_t keep);

  /// Re-reads the directory tree (external writers, crash recovery).
  [[nodiscard]] Expected<void> rescan();

  /// Sets a per-tenant advisory annotation — e.g. the ingest loop's shadow
  /// verdict — and rewrites the manifest, which carries annotations as a
  /// "notes" object inside the tenant entry. Annotations are process-local
  /// advisories over the filesystem truth: rescan() keeps them (they key
  /// on the tenant name), but a fresh open() of the same root starts
  /// without them — the ingest log is the durable record. Tenants without
  /// annotations render exactly as before, so stores that never ingest
  /// keep byte-identical manifests.
  [[nodiscard]] Expected<void> annotate(const std::string& tenant,
                                        const std::string& key,
                                        const std::string& value);
  [[nodiscard]] const std::map<std::string, std::string>* annotations(
      const std::string& tenant) const;

 private:
  [[nodiscard]] Expected<void> write_manifest() const;

  std::string root_;
  std::map<std::string, TenantInfo> tenants_;
  std::map<std::string, std::map<std::string, std::string>> notes_;
};

}  // namespace hpcp::registry
