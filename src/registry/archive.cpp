#include "src/registry/archive.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/common/io.hpp"
#include "src/registry/binary_codec.hpp"

namespace hpcp::registry {

namespace {

constexpr std::size_t kHeaderBytes = sizeof(kArchiveMagic) + 2 * 8;
constexpr std::size_t kTableEntryBytes = kSectionNameBytes + 3 * 8;
/// Generous structural bound: a section count above this is corruption,
/// not a real archive (today's writer emits 2 sections).
constexpr std::uint64_t kMaxSections = 64;

std::uint64_t fnv1a(const unsigned char* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t read_u64_le(const unsigned char* p) {
  std::uint64_t le = 0;
  std::memcpy(&le, p, sizeof(le));
  if constexpr (std::endian::native == std::endian::big) {
    return __builtin_bswap64(le);
  }
  return le;
}

void append_u64_le(std::string& out, std::uint64_t v) {
  if constexpr (std::endian::native == std::endian::big) {
    v = __builtin_bswap64(v);
  }
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

Error bad(const std::string& message, const std::string& path) {
  return Error{ErrorCode::BadData, message, path};
}

}  // namespace

/// The payload owner: either an mmap (unmapped on destruction) or a heap
/// buffer read as a fallback.
struct ModelArchive::Mapping {
  const unsigned char* data = nullptr;
  std::size_t size = 0;
  bool is_mmap = false;
  std::vector<unsigned char> fallback;

  ~Mapping() {
    if (is_mmap && data != nullptr && size > 0) {
      ::munmap(const_cast<unsigned char*>(data), size);
    }
  }
};

bool ModelArchive::mapped() const noexcept {
  return mapping_ != nullptr && mapping_->is_mmap;
}

std::size_t ModelArchive::file_bytes() const noexcept {
  return mapping_ != nullptr ? mapping_->size : 0;
}

const unsigned char* ModelArchive::bytes() const noexcept {
  return mapping_ != nullptr ? mapping_->data : nullptr;
}

bool ModelArchive::is_archive_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[sizeof(kArchiveMagic)] = {};
  in.read(magic, sizeof(magic));
  return in.gcount() == sizeof(magic) &&
         std::memcmp(magic, kArchiveMagic, sizeof(magic)) == 0;
}

Expected<ModelArchive> ModelArchive::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Error{ErrorCode::Io, "cannot open model archive", path};
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Error{ErrorCode::Io, "cannot stat model archive", path};
  }
  auto mapping = std::make_shared<Mapping>();
  mapping->size = static_cast<std::size_t>(st.st_size);
  if (mapping->size > 0) {
    void* map = ::mmap(nullptr, mapping->size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      mapping->data = static_cast<const unsigned char*>(map);
      mapping->is_mmap = true;
    } else {
      // Fallback: read the file into memory. Same bytes, same validation,
      // just without the zero-copy page cache path.
      mapping->fallback.resize(mapping->size);
      std::size_t got = 0;
      while (got < mapping->size) {
        const ssize_t n = ::read(fd, mapping->fallback.data() + got,
                                 mapping->size - got);
        if (n <= 0) break;
        got += static_cast<std::size_t>(n);
      }
      if (got != mapping->size) {
        ::close(fd);
        return Error{ErrorCode::Io, "cannot read model archive", path};
      }
      mapping->data = mapping->fallback.data();
    }
  }
  ::close(fd);

  // Structural validation: header, magic, and a section table whose every
  // entry lies inside the *actual* file ("short map" protection). Payloads
  // are not touched here.
  const unsigned char* base = mapping->data;
  const std::size_t size = mapping->size;
  if (size < kHeaderBytes) {
    return bad("archive shorter than its header", path);
  }
  if (std::memcmp(base, kArchiveMagic, sizeof(kArchiveMagic)) != 0) {
    return bad("bad archive magic", path);
  }
  const std::uint64_t format = read_u64_le(base + sizeof(kArchiveMagic));
  if (format != kArchiveFormatVersion) {
    return bad("unsupported archive format version " + std::to_string(format),
               path);
  }
  const std::uint64_t count = read_u64_le(base + sizeof(kArchiveMagic) + 8);
  if (count == 0 || count > kMaxSections) {
    return bad("implausible section count " + std::to_string(count), path);
  }
  if (kHeaderBytes + count * kTableEntryBytes > size) {
    return bad("section table extends past end of file", path);
  }

  ModelArchive archive;
  archive.mapping_ = std::move(mapping);
  archive.path_ = path;
  archive.sections_.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const unsigned char* entry =
        base + kHeaderBytes + static_cast<std::size_t>(i) * kTableEntryBytes;
    SectionInfo info;
    const char* name = reinterpret_cast<const char*>(entry);
    const std::size_t name_len = ::strnlen(name, kSectionNameBytes);
    if (name_len == 0 || name_len == kSectionNameBytes) {
      return bad("section name is empty or unterminated", path);
    }
    info.name.assign(name, name_len);
    info.offset = read_u64_le(entry + kSectionNameBytes);
    info.size = read_u64_le(entry + kSectionNameBytes + 8);
    info.checksum = read_u64_le(entry + kSectionNameBytes + 16);
    if (info.offset > size || info.size > size - info.offset) {
      return bad("section '" + info.name + "' extends past end of file",
                 path);
    }
    archive.sections_.push_back(std::move(info));
  }

  // The tiny "meta" section is validated and parsed eagerly — it is what
  // listings read, and it is one page.
  const SectionInfo* meta = archive.find("meta");
  if (meta == nullptr) {
    return bad("archive has no meta section", path);
  }
  const unsigned char* meta_bytes = base + meta->offset;
  if (fnv1a(meta_bytes, static_cast<std::size_t>(meta->size)) !=
      meta->checksum) {
    return bad("meta section checksum mismatch", path);
  }
  try {
    BinaryDeserializer d(meta_bytes, static_cast<std::size_t>(meta->size));
    d.expect_tag("hpcp-archive-meta-v1");
    archive.meta_.tenant = d.read_string();
    archive.meta_.version = static_cast<std::uint64_t>(d.read_size());
  } catch (const std::exception& e) {
    return bad(std::string("meta section corrupt: ") + e.what(), path);
  }
  return archive;
}

const SectionInfo* ModelArchive::find(const std::string& name) const {
  for (const SectionInfo& s : sections_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

Expected<TwoLevelModel> ModelArchive::load_model() const {
  const SectionInfo* model = find("model");
  if (model == nullptr) {
    return bad("archive has no model section", path_);
  }
  const unsigned char* payload = bytes() + model->offset;
  const std::size_t size = static_cast<std::size_t>(model->size);
  // Checksum before interpretation: a flipped bit anywhere in the section
  // fails here, so the parser below only ever sees bytes the writer wrote.
  if (fnv1a(payload, size) != model->checksum) {
    return bad("model section checksum mismatch", path_);
  }
  try {
    BinaryDeserializer d(payload, size);
    TwoLevelModel loaded = TwoLevelModel::load(d);
    if (d.consumed() != size) {
      return bad("model section has trailing bytes", path_);
    }
    return loaded;
  } catch (const std::exception& e) {
    return bad(std::string("model section corrupt: ") + e.what(), path_);
  }
}

Expected<void> write_model_archive(const std::string& path,
                                   const TwoLevelModel& model,
                                   const ArchiveMeta& meta) {
  // Build both payloads in memory first: the section table needs offsets
  // and checksums up front, and atomic_write_file wants one writer pass.
  std::ostringstream meta_stream(std::ios::binary);
  {
    BinarySerializer s(meta_stream);
    s.tag("hpcp-archive-meta-v1");
    s.write(meta.tenant);
    s.write(static_cast<std::size_t>(meta.version));
  }
  std::ostringstream model_stream(std::ios::binary);
  {
    BinarySerializer s(model_stream);
    model.save(s);
  }
  const std::string meta_bytes = meta_stream.str();
  const std::string model_bytes = model_stream.str();

  struct Section {
    const char* name;
    const std::string* payload;
  };
  const Section sections[] = {{"meta", &meta_bytes}, {"model", &model_bytes}};
  const std::size_t count = std::size(sections);

  std::string out;
  out.reserve(kHeaderBytes + count * kTableEntryBytes + meta_bytes.size() +
              model_bytes.size());
  out.append(kArchiveMagic, sizeof(kArchiveMagic));
  append_u64_le(out, kArchiveFormatVersion);
  append_u64_le(out, count);
  std::uint64_t offset = kHeaderBytes + count * kTableEntryBytes;
  for (const Section& s : sections) {
    char name[kSectionNameBytes] = {};
    std::strncpy(name, s.name, kSectionNameBytes - 1);
    out.append(name, kSectionNameBytes);
    append_u64_le(out, offset);
    append_u64_le(out, s.payload->size());
    append_u64_le(
        out, fnv1a(reinterpret_cast<const unsigned char*>(s.payload->data()),
                   s.payload->size()));
    offset += s.payload->size();
  }
  for (const Section& s : sections) out.append(*s.payload);

  return atomic_write_file(
      path, [&out](std::ostream& stream) { stream.write(out.data(),
          static_cast<std::streamsize>(out.size())); });
}

Expected<TwoLevelModel> load_model_any(const std::string& path) {
  if (ModelArchive::is_archive_file(path)) {
    auto archive = ModelArchive::open(path);
    if (!archive) return archive.error();
    return archive->load_model();
  }
  return TwoLevelModel::load_file_checked(path);
}

}  // namespace hpcp::registry
