#include "src/registry/binary_codec.hpp"

#include <bit>
#include <cstring>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace hpcp::registry {

namespace {

/// The archive format is defined as little-endian on disk; on a BE host
/// these helpers byte-swap so archives stay portable. (The supported CI
/// targets are all LE, where this compiles to a plain copy.)
std::uint64_t to_le(std::uint64_t v) {
  if constexpr (std::endian::native == std::endian::big) {
    return __builtin_bswap64(v);
  }
  return v;
}

std::uint64_t from_le(std::uint64_t v) { return to_le(v); }

}  // namespace

void BinarySerializer::put_bytes(const void* data, std::size_t n) {
  stream().write(static_cast<const char*>(data),
                 static_cast<std::streamsize>(n));
}

void BinarySerializer::put_u64(std::uint64_t v) {
  const std::uint64_t le = to_le(v);
  put_bytes(&le, sizeof(le));
}

void BinarySerializer::tag(const std::string& name) { write(name); }

void BinarySerializer::write(double v) {
  put_u64(std::bit_cast<std::uint64_t>(v));
}

void BinarySerializer::write(std::size_t v) {
  put_u64(static_cast<std::uint64_t>(v));
}

void BinarySerializer::write(std::int64_t v) {
  put_u64(static_cast<std::uint64_t>(v));
}

void BinarySerializer::write(bool v) {
  const unsigned char b = v ? 1 : 0;
  put_bytes(&b, 1);
}

void BinarySerializer::write(const std::string& s) {
  put_u64(s.size());
  put_bytes(s.data(), s.size());
}

void BinarySerializer::write(const std::vector<double>& v) {
  put_u64(v.size());
  if constexpr (std::endian::native == std::endian::little) {
    // The bulk fast path the binary format exists for: one contiguous
    // write per vector instead of one token per element.
    put_bytes(v.data(), v.size() * sizeof(double));
  } else {
    for (const double x : v) write(x);
  }
}

void BinarySerializer::write(const std::vector<std::size_t>& v) {
  put_u64(v.size());
  for (const std::size_t x : v) put_u64(static_cast<std::uint64_t>(x));
}

void BinarySerializer::write(const std::vector<std::string>& v) {
  put_u64(v.size());
  for (const auto& s : v) write(s);
}

const unsigned char* BinaryDeserializer::take(std::size_t n) {
  if (n > size_ - pos_) {
    throw std::runtime_error("model archive truncated (binary section)");
  }
  const unsigned char* p = data_ + pos_;
  pos_ += n;
  return p;
}

std::uint64_t BinaryDeserializer::take_u64() {
  std::uint64_t le = 0;
  std::memcpy(&le, take(sizeof(le)), sizeof(le));
  return from_le(le);
}

void BinaryDeserializer::expect_tag(const std::string& name) {
  const std::string token = read_string();
  if (token != name) {
    throw std::runtime_error("model archive corrupt: expected tag '" + name +
                             "', found '" + token + "'");
  }
}

double BinaryDeserializer::read_double() {
  return std::bit_cast<double>(take_u64());
}

std::size_t BinaryDeserializer::read_size() {
  const std::uint64_t v = take_u64();
  if (v > std::numeric_limits<std::size_t>::max()) {
    throw std::runtime_error("model archive corrupt: oversized count");
  }
  return static_cast<std::size_t>(v);
}

std::int64_t BinaryDeserializer::read_int() {
  return static_cast<std::int64_t>(take_u64());
}

bool BinaryDeserializer::read_bool() {
  const unsigned char b = *take(1);
  if (b > 1) {
    throw std::runtime_error("model archive corrupt: non-boolean byte");
  }
  return b != 0;
}

std::string BinaryDeserializer::read_string() {
  const std::uint64_t len = take_u64();
  // A flipped length byte must fail as "truncated", not as a giant
  // allocation: the remaining span bounds any legitimate length.
  if (len > size_ - pos_) {
    throw std::runtime_error("model archive truncated (binary string)");
  }
  const unsigned char* p = take(static_cast<std::size_t>(len));
  return std::string(reinterpret_cast<const char*>(p),
                     static_cast<std::size_t>(len));
}

std::vector<double> BinaryDeserializer::read_doubles() {
  const std::uint64_t n = take_u64();
  if (n > (size_ - pos_) / sizeof(double)) {
    throw std::runtime_error("model archive truncated (double block)");
  }
  std::vector<double> v(static_cast<std::size_t>(n));
  if constexpr (std::endian::native == std::endian::little) {
    const unsigned char* p = take(v.size() * sizeof(double));
    std::memcpy(v.data(), p, v.size() * sizeof(double));
  } else {
    for (auto& x : v) x = read_double();
  }
  return v;
}

std::vector<std::size_t> BinaryDeserializer::read_sizes() {
  const std::uint64_t n = take_u64();
  if (n > (size_ - pos_) / sizeof(std::uint64_t)) {
    throw std::runtime_error("model archive truncated (size block)");
  }
  std::vector<std::size_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = read_size();
  return v;
}

std::vector<std::string> BinaryDeserializer::read_strings() {
  const std::uint64_t n = take_u64();
  if (n > size_ - pos_) {
    throw std::runtime_error("model archive truncated (string block)");
  }
  std::vector<std::string> v(static_cast<std::size_t>(n));
  for (auto& s : v) s = read_string();
  return v;
}

}  // namespace hpcp::registry
