#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/core/two_level_model.hpp"

/// \file archive.hpp (registry)
/// The sectioned, offset-indexed `.hpcp` model archive.
///
/// Layout (all integers little-endian u64):
///
///   +--------------------------------------------------------------+
///   | magic "HPCPARC1" (8 B) | format_version | section_count      |
///   +--------------------------------------------------------------+
///   | section table: per section                                   |
///   |   name (16 B, NUL padded) | offset | size | fnv1a checksum   |
///   +--------------------------------------------------------------+
///   | section payloads ("meta", "model", ...)                      |
///   +--------------------------------------------------------------+
///
///   "meta"   tenant name + registry version (binary codec)
///   "model"  the full model graph through BinarySerializer
///
/// Opening an archive mmaps the file and validates only the header and
/// section table — O(pages touched), not a full deserialize — so registry
/// listings and manifest checks stay cheap no matter how large the model
/// is. `load_model()` then checksums and parses just the "model" section.
/// When mmap is unavailable (exotic filesystems, resource limits) the
/// archive falls back to reading the file into memory; the parse is
/// bit-identical either way, and loading a *legacy text* archive through
/// `load_model_any` falls back to the serialize.cpp path (the property
/// tests pin all three routes to bitwise-equal predictions).
///
/// Corruption — truncation, bit flips, a section table pointing past EOF
/// ("short map") — surfaces as typed BadData/Io errors: every section is
/// bounds-checked against the actual file size and checksummed before a
/// single payload byte is interpreted.

namespace hpcp::registry {

inline constexpr char kArchiveMagic[8] = {'H', 'P', 'C', 'P',
                                          'A', 'R', 'C', '1'};
inline constexpr std::uint64_t kArchiveFormatVersion = 1;
inline constexpr std::size_t kSectionNameBytes = 16;

/// What the "meta" section records about the archived model.
struct ArchiveMeta {
  std::string tenant;          ///< registry tenant name ("" = standalone)
  std::uint64_t version = 0;   ///< registry version number (0 = standalone)
};

/// One entry of the section table, as validated at open().
struct SectionInfo {
  std::string name;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint64_t checksum = 0;  ///< FNV-1a 64 over the payload bytes
};

/// A validated, opened archive. Holds the mapping (or fallback buffer)
/// alive; copyable handles share it.
class ModelArchive {
 public:
  /// mmaps (or reads) `path` and validates magic, format version, and the
  /// section table against the real file size. Does NOT parse the model.
  /// Unopenable file -> Io; anything structurally wrong -> BadData.
  [[nodiscard]] static Expected<ModelArchive> open(const std::string& path);

  /// True when the first bytes of `path` carry the archive magic (false
  /// for legacy text archives, unreadable paths, short files).
  [[nodiscard]] static bool is_archive_file(const std::string& path);

  [[nodiscard]] const ArchiveMeta& meta() const noexcept { return meta_; }
  [[nodiscard]] const std::vector<SectionInfo>& sections() const noexcept {
    return sections_;
  }
  /// True when the payload is served from an mmap (false = read fallback).
  [[nodiscard]] bool mapped() const noexcept;
  [[nodiscard]] std::size_t file_bytes() const noexcept;

  /// Checksums the "model" section, then parses it with the binary codec.
  /// A flipped bit or short section -> BadData, never UB.
  [[nodiscard]] Expected<TwoLevelModel> load_model() const;

 private:
  ModelArchive() = default;
  struct Mapping;  ///< mmap or heap buffer + lifetime

  [[nodiscard]] const SectionInfo* find(const std::string& name) const;
  [[nodiscard]] const unsigned char* bytes() const noexcept;

  std::shared_ptr<const Mapping> mapping_;
  std::vector<SectionInfo> sections_;
  ArchiveMeta meta_;
  std::string path_;
};

/// Writes `model` + `meta` as a sectioned archive, atomically
/// (tmp + fsync + rename): a crash mid-write never tears a live archive.
[[nodiscard]] Expected<void> write_model_archive(const std::string& path,
                                                 const TwoLevelModel& model,
                                                 const ArchiveMeta& meta);

/// Loads a model from either format: a sectioned binary archive (by
/// magic), or the legacy text archive via the serialize.cpp path.
[[nodiscard]] Expected<TwoLevelModel> load_model_any(const std::string& path);

}  // namespace hpcp::registry
