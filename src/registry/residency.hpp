#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/core/two_level_model.hpp"
#include "src/registry/registry.hpp"

/// \file residency.hpp (registry)
/// The serving-side pool of resident models over a Registry.
///
/// Thousands of tenants cannot all be resident; the pool keeps an LRU of
/// loaded models under two caps — a count (`max_resident_models`) and a
/// byte budget (`max_resident_bytes`, archive bytes on disk as the proxy
/// for resident footprint). `acquire` returns a shared_ptr: the pool's own
/// reference is the *residency*, the caller's reference is the *pin*. An
/// eviction only drops the pool's reference, so a model pinned by an
/// in-flight batch finishes serving untouched and is freed when the last
/// pin releases — RCU by shared_ptr. Eviction additionally skips entries
/// whose use_count shows a live pin, so a tenant mid-batch is never the
/// victim while a colder one exists.
///
/// Per-tenant epoch swap: `reload(tenant)` loads the registry's latest
/// archive *fully* before swapping the resident entry, so readers see
/// either the old model or the new one, never a torn state — the
/// per-tenant generalization of the server's SIGHUP snapshot swap. A
/// failed load (missing/corrupt archive) keeps the old resident model
/// serving, records the failure in that tenant's stats, and degrades only
/// that tenant; every other tenant is structurally unaffected.
///
/// The pool is confined to the serving thread (like the Server's own
/// resilience state): calls happen serially in request order, which is
/// what makes hit/evict accounting — and therefore `stats` output —
/// deterministic under replay.

namespace hpcp::registry {

/// The tenant every request without a "model" field resolves to.
inline constexpr const char* kDefaultTenant = "default";

/// One resident (loaded) model plus the serving metadata the hot path
/// needs without touching the model object.
struct ResidentModel {
  std::string tenant;
  std::uint64_t version = 0;
  std::uint64_t bytes = 0;  ///< archive size on disk (budget accounting)
  TwoLevelModel model;
  std::vector<std::size_t> default_scales;
  std::size_t num_features = 0;
};

struct PoolOptions {
  /// Resident-model count cap (>= 1; 0 is clamped to 1 — a pool that can
  /// hold nothing cannot serve).
  std::size_t max_resident_models = 4;
  /// Resident byte budget across all tenants; 0 = unlimited. A single
  /// model larger than the budget is still admitted alone (the cap
  /// bounds *hoarding*, not service).
  std::uint64_t max_resident_bytes = 0;
};

/// Per-tenant counters for health/stats.
struct TenantStats {
  std::string tenant;
  std::uint64_t version = 0;  ///< resident version (0 = never loaded)
  bool resident = false;
  std::uint64_t hits = 0;       ///< acquires served by a resident model
  std::uint64_t loads = 0;      ///< cold loads (residency misses)
  std::uint64_t evictions = 0;  ///< times this tenant was evicted
  std::uint64_t load_failures = 0;
  std::string last_error;  ///< last load failure ("" = healthy)
};

class ModelPool {
 public:
  ModelPool(Registry registry, PoolOptions opts);

  [[nodiscard]] const Registry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] Registry& registry() noexcept { return registry_; }
  [[nodiscard]] const PoolOptions& options() const noexcept { return opts_; }

  /// True when the registry has any version of `tenant` on disk.
  [[nodiscard]] bool known(const std::string& tenant) const;

  /// The resident model for `tenant`, loading (and possibly evicting)
  /// on a residency miss. Unknown tenant or a failed load is a typed
  /// error; a load failure is also recorded in the tenant's stats.
  [[nodiscard]] Expected<std::shared_ptr<const ResidentModel>> acquire(
      const std::string& tenant);

  /// Epoch swap to the registry's latest version: the new archive is
  /// loaded fully, then swapped in; in-flight pins keep the old model
  /// alive. On failure the old resident model (if any) keeps serving and
  /// only this tenant is degraded. Returns the new resident version.
  [[nodiscard]] Expected<std::uint64_t> reload(const std::string& tenant);

  /// Reloads every currently resident tenant (the SIGHUP path).
  /// Per-tenant failures degrade only their tenant.
  void reload_all_resident();

  /// Rescans the registry directory (new tenants/versions published by
  /// another process become visible).
  [[nodiscard]] Expected<void> refresh();

  [[nodiscard]] std::size_t resident_count() const noexcept;
  [[nodiscard]] std::uint64_t resident_bytes() const noexcept {
    return resident_bytes_;
  }
  [[nodiscard]] std::uint64_t total_evictions() const noexcept {
    return total_evictions_;
  }
  /// All tenants ever touched plus all tenants on disk, sorted by name.
  [[nodiscard]] std::vector<TenantStats> stats() const;

 private:
  struct Resident {
    std::shared_ptr<const ResidentModel> model;
    std::list<std::string>::iterator lru_pos;
  };

  /// Loads (tenant, version) from disk into a ResidentModel.
  [[nodiscard]] Expected<std::shared_ptr<const ResidentModel>> load_version(
      const std::string& tenant, std::uint64_t version);
  /// Installs a loaded model as the resident entry, then evicts down to
  /// the caps (skipping pinned entries and the tenant just installed).
  void install(const std::string& tenant,
               std::shared_ptr<const ResidentModel> model);
  void evict_down(const std::string& protect);
  [[nodiscard]] TenantStats& stats_for(const std::string& tenant);

  Registry registry_;
  PoolOptions opts_;
  std::map<std::string, Resident> resident_;
  std::list<std::string> lru_;  ///< front = most recently used
  std::uint64_t resident_bytes_ = 0;
  std::uint64_t total_evictions_ = 0;
  std::map<std::string, TenantStats> stats_;
};

}  // namespace hpcp::registry
